"""Tests for SuiteConfig (defaults file + user-parameter overrides)."""

import json

import pytest

from repro.core.config import DEFAULTS, KNOBS, SuiteConfig, parse_batch
from repro.errors import ConfigError


class TestDefaults:
    def test_shipped_defaults(self):
        assert DEFAULTS.dataset == "cora"
        assert DEFAULTS.model == "gcn"
        assert DEFAULTS.compute_model == "MP"
        assert DEFAULTS.framework == "gsuite"
        assert DEFAULTS.repeats == 3  # paper: three runs, mean reported

    def test_partial_overrides(self):
        cfg = SuiteConfig(model="gin", dataset="reddit")
        assert cfg.model == "gin"
        assert cfg.num_layers == DEFAULTS.num_layers


class TestValidation:
    @pytest.mark.parametrize("bad", [
        {"num_layers": 0},
        {"hidden": 0},
        {"out_features": 0},
        {"scale": 0.0},
        {"scale": 1.5},
        {"repeats": 0},
        {"sample_cap": 0},
        {"compute_model": "TPU"},
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigError):
            SuiteConfig(**bad)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError) as err:
            SuiteConfig.from_dict({"modle": "gcn"})
        assert "modle" in str(err.value)

    def test_with_overrides_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            DEFAULTS.with_overrides(depth=3)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        cfg = SuiteConfig(model="sage", dataset="pubmed", num_layers=3)
        path = tmp_path / "config.json"
        cfg.save(path)
        loaded = SuiteConfig.from_file(path)
        assert loaded == cfg

    def test_file_overrides(self, tmp_path):
        path = tmp_path / "config.json"
        SuiteConfig(model="gcn").save(path)
        loaded = SuiteConfig.from_file(path, model="gin")
        assert loaded.model == "gin"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            SuiteConfig.from_file(tmp_path / "absent.json")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(ConfigError):
            SuiteConfig.from_file(path)

    def test_non_object_file(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2]))
        with pytest.raises(ConfigError):
            SuiteConfig.from_file(path)


class TestImmutability:
    def test_with_overrides_returns_new(self):
        cfg = SuiteConfig()
        other = cfg.with_overrides(model="gin")
        assert cfg.model == "gcn"
        assert other.model == "gin"

    def test_to_dict_round_trips(self):
        cfg = SuiteConfig(model="gin", scale=0.5)
        assert SuiteConfig.from_dict(cfg.to_dict()) == cfg


class TestKnobs:
    """The shared knob vocabulary (shards / fuse / batch /
    partitioner / serve_batch)."""

    def test_registry_covers_the_plan_knobs(self):
        assert set(KNOBS) == {"shards", "fuse", "batch", "partitioner",
                              "serve_batch"}

    @pytest.mark.parametrize("name,auto,off", [
        ("shards", 0, 1),
        ("batch", 0, 1),
        ("serve_batch", 0, 1),
        ("fuse", "auto", "off"),
    ])
    def test_uniform_auto_off_vocabulary(self, name, auto, off):
        knob = KNOBS[name]
        assert knob.parse("auto") == auto
        assert knob.parse("AUTO") == auto       # case-insensitive
        assert knob.parse("off") == off

    def test_integer_knobs_accept_ints_and_digit_strings(self):
        assert KNOBS["shards"].parse(4) == 4
        assert KNOBS["shards"].parse("4") == 4
        assert KNOBS["batch"].parse(16) == 16
        assert KNOBS["batch"].parse(16.0) == 16  # integral float ok

    def test_fuse_keeps_its_force_spelling(self):
        assert KNOBS["fuse"].parse("force") == "force"
        with pytest.raises(ConfigError):
            KNOBS["fuse"].parse(2)              # fuse takes no integer

    @pytest.mark.parametrize("name,bad", [
        ("shards", "some"), ("shards", 2.5),
        ("shards", True), ("batch", "many"), ("batch", False),
        ("fuse", "maybe"),
    ])
    def test_uniform_refusal(self, name, bad):
        knob = KNOBS[name]
        with pytest.raises(ConfigError) as err:
            knob.parse(bad)
        assert str(err.value) == \
            f"{name} must be {knob.vocabulary()}, got {bad!r}"

    @pytest.mark.parametrize("name", ["shards", "batch"])
    def test_below_minimum_refused_with_range_message(self, name):
        with pytest.raises(ConfigError, match="must be >= 0"):
            KNOBS[name].parse(-1)

    def test_parse_batch_is_the_batch_knob(self):
        assert parse_batch("auto") == 0
        assert parse_batch("off") == 1
        assert parse_batch(3) == 3

    def test_config_fields_parse_through_knobs(self):
        cfg = SuiteConfig(shards="auto", fuse="force", batch="off")
        assert cfg.shards == 0
        assert cfg.fuse == "force"
        assert cfg.batch == 1

    def test_profile_costs_field(self):
        assert SuiteConfig().profile_costs == "default"
        assert SuiteConfig(profile_costs="paper").profile_costs == "paper"
        with pytest.raises(ConfigError):
            SuiteConfig(profile_costs="")
