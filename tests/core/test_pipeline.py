"""Integration tests for the GNNPipeline facade."""

import numpy as np
import pytest

from repro.core import GNNPipeline, SuiteConfig
from repro.errors import ConfigError
from repro.gpu import GpuSimulator, v100_config


@pytest.fixture(scope="module")
def pipeline():
    return GNNPipeline.from_params(model="gcn", dataset="cora", scale=0.15)


class TestConstruction:
    def test_from_params_uses_defaults(self, pipeline):
        assert pipeline.config.num_layers == 2
        assert pipeline.figure_label() == "gSuite-MP"

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError):
            GNNPipeline.from_params(modle="gcn")

    def test_out_features_defaults_to_class_count(self, pipeline):
        assert pipeline.spec.out_features == 7  # Cora has 7 classes

    def test_out_features_override(self):
        pipe = GNNPipeline.from_params(dataset="cora", out_features=3,
                                       scale=0.1)
        assert pipe.spec.out_features == 3

    def test_explicit_graph_skips_loading(self):
        from repro.graph import Graph
        g = Graph(np.array([[0, 1], [1, 0]]),
                  features=np.ones((2, 4), dtype=np.float32), name="custom")
        pipe = GNNPipeline(SuiteConfig(dataset="cora"), graph=g)
        assert pipe.graph is g

    def test_figure_labels(self):
        assert GNNPipeline.from_params(framework="pyg",
                                       scale=0.1).figure_label() == "PyG"
        assert GNNPipeline.from_params(
            framework="gsuite", compute_model="SpMM",
            scale=0.1).figure_label() == "gSuite-SpMM"


class TestExecution:
    def test_run_shape(self, pipeline):
        out = pipeline.run()
        assert out.shape == (pipeline.graph.num_nodes, 7)

    def test_measure_repeats(self, pipeline):
        times = pipeline.measure(repeats=2)
        assert len(times) == 2
        assert all(t > 0 for t in times)

    def test_measure_uses_config_repeats(self):
        pipe = GNNPipeline.from_params(dataset="cora", scale=0.1, repeats=2)
        assert len(pipe.measure()) == 2

    def test_record_collects_kernel_launches(self, pipeline):
        recorder = pipeline.record()
        kernels = {l.kernel for l in recorder.launches}
        assert kernels == {"sgemm", "indexSelect", "scatter"}

    def test_record_respects_sample_cap(self):
        pipe = GNNPipeline.from_params(dataset="cora", scale=0.1,
                                       sample_cap=128)
        recorder = pipe.record()
        assert recorder.sample_cap == 128

    def test_simulate_and_profile(self, pipeline):
        sims = pipeline.simulate(GpuSimulator(v100_config(max_cycles=5_000)))
        profs = pipeline.profile()
        assert len(sims) == len(profs) == 6  # 3 kernels x 2 layers
        assert all(0 <= r.l1_hit_rate <= 1 for r in sims)
        assert all(0 <= p.l1_hit_rate <= 1 for p in profs)

    def test_backend_dispatch(self):
        mp = GNNPipeline.from_params(dataset="cora", scale=0.1,
                                     framework="pyg")
        sp = GNNPipeline.from_params(dataset="cora", scale=0.1,
                                     framework="dgl", compute_model="SpMM")
        a, b = mp.run(), sp.run()
        assert np.allclose(a, b, atol=1e-3)  # same function, two frameworks

    def test_adaptive_backend_dispatch(self):
        pipe = GNNPipeline.from_params(dataset="cora", scale=0.1,
                                       framework="gsuite-adaptive")
        assert pipe.figure_label() == "gSuite-Adaptive"
        assert pipe.run().shape == (pipe.graph.num_nodes, 7)

    def test_plan_accessor_exposes_lowered_ir(self, pipeline):
        decisions = pipeline.plan()
        assert decisions.execution_plan is not None
        assert decisions.execution_plan.op_counts()  # non-empty op stream
        # The typed decision record reflects the defaults the build
        # actually applied.
        assert decisions.shards == 1 and decisions.shards_source == "off"
        assert decisions.batch == 1 and decisions.batch_source == "off"
        assert decisions.cost_profile == "paper"
        assert "plan_fingerprint" in decisions.to_dict()


class TestPersistentCacheUse:
    """simulate()/profile() must hit results/.cache like the bench engine."""

    def _fresh(self):
        return GNNPipeline.from_params(model="gcn", dataset="cora",
                                       scale=0.1)

    def test_simulate_populates_and_hits_cache(self):
        from repro.cache import get_cache
        cache = get_cache()
        first = self._fresh().simulate()
        assert cache.stats.stores > 0           # launches persisted
        before_hits = cache.stats.hits
        second = self._fresh().simulate()       # fresh pipeline, same trace
        assert cache.stats.hits > before_hits
        assert [r.cycles for r in second] == [r.cycles for r in first]

    def test_profile_populates_and_hits_cache(self):
        from repro.cache import get_cache
        cache = get_cache()
        first = self._fresh().profile()
        assert cache.stats.stores > 0
        before_hits = cache.stats.hits
        second = self._fresh().profile()
        assert cache.stats.hits > before_hits
        assert ([r.l1_hit_rate for r in second]
                == [r.l1_hit_rate for r in first])

    def test_explicit_cache_override(self, tmp_path):
        from repro.cache import TraceCache
        private = TraceCache(tmp_path / "private-cache")
        self._fresh().simulate(cache=private)
        assert private.stats.stores > 0
        self._fresh().profile(cache=private)
        assert private.stats.stores > 0

    def test_explicit_simulator_untouched(self):
        sim = GpuSimulator(v100_config(max_cycles=2_000))
        results = self._fresh().simulate(sim)
        assert sim.cache is None                # as configured
        assert results
