"""Tests for the GAT extension model."""

import numpy as np
import pytest

from repro.core.kernels import record_launches
from repro.core.models import build_model
from repro.core.models.gat import GAT, _leaky_relu
from repro.errors import ModelError
from repro.graph import Graph, add_self_loops


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    edge_index = rng.integers(0, 20, size=(2, 60))
    features = rng.standard_normal((20, 10)).astype(np.float32)
    return Graph(edge_index, features=features, name="toy")


def dense_gat_layer(model, layer, x, graph):
    """Straightforward dense reference of one GAT layer."""
    params = model.weights[layer]
    looped = add_self_loops(graph)
    src, dst = looped.edge_index
    h = x @ params["W"]
    logits = _leaky_relu(h[src] @ params["a_src"] + h[dst] @ params["a_dst"])
    out = np.zeros((graph.num_nodes, h.shape[1]), dtype=np.float64)
    for v in range(graph.num_nodes):
        edges = np.flatnonzero(dst == v)
        if edges.size == 0:
            continue
        weights = np.exp(logits[edges] - logits[edges].max())
        weights = weights / weights.sum()
        out[v] = (weights[:, None] * h[src[edges]]).sum(axis=0)
    return out + params["b"]


class TestGAT:
    def test_registered(self):
        model = build_model("gat", 10, 8, 4)
        assert isinstance(model, GAT)

    def test_spmm_unsupported(self):
        with pytest.raises(ModelError):
            build_model("gat", 10, 8, 4, compute_model="SpMM")

    def test_matches_dense_reference(self, graph):
        model = GAT(10, 8, 4, num_layers=1, seed=0)
        out = model(graph)
        expected = dense_gat_layer(model, 0, graph.features, graph)
        assert np.allclose(out, expected, atol=1e-3)

    def test_attention_is_convex_combination(self, graph):
        """With identical inputs, attention output equals that input
        (softmax weights sum to one)."""
        model = GAT(10, 8, 8, num_layers=1, seed=1)
        uniform = np.ones((graph.num_nodes, 10), dtype=np.float32)
        out = model(graph, features=uniform)
        h_row = (uniform[0] @ model.weights[0]["W"]) + model.weights[0]["b"]
        assert np.allclose(out, np.tile(h_row, (graph.num_nodes, 1)),
                           atol=1e-4)

    def test_two_layer_shapes(self, graph):
        model = build_model("gat", 10, 8, 3, num_layers=2)
        assert model(graph).shape == (20, 3)

    def test_decomposes_into_core_kernels(self, graph):
        model = build_model("gat", 10, 8, 3)
        with record_launches() as recorder:
            model(graph)
        kernels = {l.kernel for l in recorder.launches}
        assert kernels == {"sgemm", "indexSelect", "scatter"}
        # Edge softmax uses the max reduction of scatter.
        assert any(l.tag == "max" or "gat" in l.tag
                   for l in recorder.launches if l.kernel == "scatter")

    def test_isolated_node_attends_to_itself(self):
        g = Graph(np.array([[0], [1]]), num_nodes=3,
                  features=np.eye(3, dtype=np.float32))
        model = GAT(3, 4, 2, num_layers=1, seed=2)
        out = model(g)
        params = model.weights[0]
        expected = g.features[2] @ params["W"] + params["b"]
        assert np.allclose(out[2], expected, atol=1e-4)

    def test_deterministic(self, graph):
        a = GAT(10, 8, 4, seed=5)(graph)
        b = GAT(10, 8, 4, seed=5)(graph)
        assert np.array_equal(a, b)
