"""Tests for the kernel instrumentation layer (launch records, traces)."""

import numpy as np
import pytest

from repro.core.kernels import (
    InstructionMix,
    index_select,
    record_launches,
    scatter,
    sgemm,
    spgemm,
    spmm,
)
from repro.core.kernels.launch import (
    LINE_BYTES,
    WARP_SIZE,
    LaunchRecorder,
    active_recorder,
    row_lines,
    sample_stride,
    sequential_lines,
)
from repro.graph.formats import COOMatrix


class TestInstructionMix:
    def test_total(self):
        mix = InstructionMix(fp32=1, int_ops=2, ldst=3, control=4, other=0)
        assert mix.total == 10

    def test_fractions_sum_to_one(self):
        mix = InstructionMix(fp32=5, int_ops=5, ldst=5, control=5, other=5)
        assert sum(mix.fractions().values()) == pytest.approx(1.0)

    def test_empty_mix_fractions(self):
        assert all(v == 0.0 for v in InstructionMix().fractions().values())

    def test_scaled(self):
        mix = InstructionMix(fp32=2).scaled(3.0)
        assert mix.fp32 == 6.0


class TestRecorder:
    def test_no_recording_outside_context(self):
        assert active_recorder() is None
        out = index_select(np.ones((2, 2), dtype=np.float32), np.array([0]))
        assert out.shape == (1, 2)  # kernel still works

    def test_launches_collected_in_order(self):
        x = np.ones((4, 3), dtype=np.float32)
        with record_launches() as rec:
            index_select(x, np.array([0, 1]))
            scatter(x, np.array([0, 1, 0, 1]), dim_size=2)
            sgemm(x, np.ones((3, 2), dtype=np.float32))
        assert [l.kernel for l in rec.launches] == ["indexSelect", "scatter", "sgemm"]

    def test_nested_recorders_are_independent(self):
        x = np.ones((2, 2), dtype=np.float32)
        with record_launches() as outer:
            index_select(x, np.array([0]))
            with record_launches() as inner:
                index_select(x, np.array([1]))
            assert len(inner.launches) == 1
        assert len(outer.launches) == 1

    def test_invalid_sample_cap(self):
        with pytest.raises(ValueError):
            LaunchRecorder(sample_cap=0)

    def test_regions_are_disjoint(self):
        rec = LaunchRecorder()
        a, b = rec.new_region(), rec.new_region()
        assert a != b

    def test_by_kernel_grouping(self):
        x = np.ones((4, 3), dtype=np.float32)
        with record_launches() as rec:
            index_select(x, np.array([0]))
            index_select(x, np.array([1]))
            sgemm(x, np.ones((3, 2), dtype=np.float32))
        grouped = rec.by_kernel()
        assert len(grouped["indexSelect"]) == 2
        assert len(grouped["sgemm"]) == 1

    def test_total_duration_nonnegative(self):
        x = np.ones((64, 16), dtype=np.float32)
        with record_launches() as rec:
            sgemm(x, np.ones((16, 16), dtype=np.float32))
        assert rec.total_duration() >= 0.0


class TestLaunchRecords:
    def test_geometry(self):
        x = np.ones((100, 10), dtype=np.float32)
        with record_launches() as rec:
            index_select(x, np.arange(100))
        launch = rec.launches[0]
        assert launch.threads == 1000
        assert launch.warps == int(np.ceil(1000 / WARP_SIZE))
        assert launch.ctas >= 1

    def test_scatter_is_atomic(self):
        with record_launches() as rec:
            scatter(np.ones((4, 2), dtype=np.float32), np.array([0, 1, 0, 1]), 2)
        assert rec.launches[0].atomic
        assert rec.launches[0].short_form == "sc"

    def test_sgemm_mix_is_fp32_dominated(self):
        a = np.ones((64, 64), dtype=np.float32)
        with record_launches() as rec:
            sgemm(a, a)
        fractions = rec.launches[0].mix.fractions()
        assert fractions["FP32"] > 0.5

    def test_gather_mix_is_int_dominated(self):
        x = np.ones((64, 8), dtype=np.float32)
        with record_launches() as rec:
            index_select(x, np.arange(64))
        fractions = rec.launches[0].mix.fractions()
        assert fractions["INT"] > fractions["FP32"]
        assert fractions["INT"] >= max(fractions.values()) - 1e-9

    def test_trace_addresses_are_line_aligned(self):
        x = np.ones((32, 7), dtype=np.float32)
        with record_launches() as rec:
            index_select(x, np.arange(32))
            scatter(x, np.arange(32), 32)
        for launch in rec.launches:
            assert np.all(launch.loads % LINE_BYTES == 0)
            assert np.all(launch.stores % LINE_BYTES == 0)

    def test_irregular_gather_touches_irregular_lines(self):
        # Feature rows wider than a line: distinct indices -> distinct lines.
        x = np.zeros((1000, 64), dtype=np.float32)  # 256 B/row = 2 lines
        idx = np.array([0, 500, 999])
        with record_launches() as rec:
            index_select(x, idx)
        gather_lines = rec.launches[0].loads
        assert np.unique(gather_lines).size >= 6  # 3 rows x 2 lines

    def test_sampling_caps_trace_size(self):
        x = np.ones((1000, 32), dtype=np.float32)
        idx = np.tile(np.arange(1000), 40)  # 40k gathers
        with record_launches(sample_cap=500) as rec:
            index_select(x, idx)
        launch = rec.launches[0]
        assert launch.sample_fraction < 1.0
        assert launch.trace_accesses() < 40_000

    def test_arithmetic_intensity(self):
        a = np.ones((32, 32), dtype=np.float32)
        with record_launches() as rec:
            sgemm(a, a)
        launch = rec.launches[0]
        assert launch.arithmetic_intensity > 0

    def test_spmm_and_spgemm_short_form(self):
        rng = np.random.default_rng(0)
        csr = COOMatrix(rng.integers(0, 10, 30), rng.integers(0, 10, 30),
                        shape=(10, 10)).to_csr()
        with record_launches() as rec:
            spmm(csr, np.ones((10, 4), dtype=np.float32))
            spgemm(csr, csr)
        assert rec.launches[0].short_form == "sp"
        assert rec.launches[1].short_form == "sp"
        assert rec.launches[0].kernel == "spmm"
        assert rec.launches[1].kernel == "SpGEMM"


class TestTraceHelpers:
    def test_sample_stride(self):
        assert sample_stride(10, 100) == 1
        assert sample_stride(100, 10) == 10
        assert sample_stride(101, 10) == 11

    def test_sequential_lines_covers_extent(self):
        lines = sequential_lines(0, 1024, cap=10**6)
        assert lines.size == 8  # 1024 / 128
        assert lines[0] == 0 and lines[-1] == 7 * LINE_BYTES

    def test_sequential_lines_empty(self):
        assert sequential_lines(0, 0, 10).size == 0

    def test_row_lines_single_line_rows(self):
        # 4-byte rows: 32 consecutive rows share one 128-byte line.
        lines = row_lines(0, np.arange(32), row_bytes=4)
        assert np.unique(lines).size == 1

    def test_row_lines_multi_line_rows(self):
        lines = row_lines(0, np.array([0]), row_bytes=300)
        assert lines.size == 3  # 300 bytes span 3 lines

    def test_row_lines_unaligned_row_spans_extra_line(self):
        # 100-byte rows: row 1 starts at byte 100 and ends at 199,
        # crossing the 128-byte boundary.
        lines = row_lines(0, np.array([1]), row_bytes=100)
        assert lines.size == 2

    def test_row_lines_empty(self):
        assert row_lines(0, np.array([], dtype=np.int64), 100).size == 0
