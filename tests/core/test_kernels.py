"""Unit and property tests for the core kernels (Table II)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    KERNELS,
    REDUCE_OPS,
    get_kernel,
    index_select,
    kernel_table,
    scatter,
    sgemm,
    spgemm,
    spmm,
)
from repro.errors import KernelError
from repro.graph.formats import COOMatrix


def random_csr(rng, n=12, nnz=40):
    return COOMatrix(
        rng.integers(0, n, nnz), rng.integers(0, n, nnz),
        rng.standard_normal(nnz).astype(np.float32), shape=(n, n),
    ).to_csr()


class TestIndexSelect:
    def test_row_gather(self):
        x = np.arange(12, dtype=np.float32).reshape(4, 3)
        out = index_select(x, np.array([2, 0, 2]))
        assert np.allclose(out, x[[2, 0, 2]])

    def test_column_gather(self):
        x = np.arange(12, dtype=np.float32).reshape(4, 3)
        out = index_select(x, np.array([1, 1]), dim=1)
        assert np.allclose(out, x[:, [1, 1]])

    def test_1d_input(self):
        x = np.array([5.0, 7.0, 9.0], dtype=np.float32)
        assert np.allclose(index_select(x, np.array([2, 1])), [9.0, 7.0])

    def test_empty_index(self):
        x = np.ones((3, 2), dtype=np.float32)
        out = index_select(x, np.array([], dtype=np.int64))
        assert out.shape == (0, 2)

    def test_out_of_range_rejected(self):
        x = np.ones((3, 2), dtype=np.float32)
        with pytest.raises(KernelError):
            index_select(x, np.array([3]))
        with pytest.raises(KernelError):
            index_select(x, np.array([-1]))

    def test_float_index_rejected(self):
        with pytest.raises(KernelError):
            index_select(np.ones((3, 2)), np.array([0.5]))

    def test_3d_input_rejected(self):
        with pytest.raises(KernelError):
            index_select(np.ones((2, 2, 2)), np.array([0]))

    def test_bad_dim_rejected(self):
        with pytest.raises(KernelError):
            index_select(np.ones(4), np.array([0]), dim=1)


class TestScatter:
    def test_sum(self):
        src = np.array([[1.0], [2.0], [3.0]], dtype=np.float32)
        out = scatter(src, np.array([0, 0, 2]), dim_size=3)
        assert np.allclose(out[:, 0], [3.0, 0.0, 3.0])

    def test_mean(self):
        src = np.array([[2.0], [4.0]], dtype=np.float32)
        out = scatter(src, np.array([1, 1]), dim_size=2, reduce="mean")
        assert out[1, 0] == pytest.approx(3.0)

    def test_max_and_min(self):
        src = np.array([[1.0], [-5.0], [3.0]], dtype=np.float32)
        idx = np.array([0, 0, 0])
        assert scatter(src, idx, 1, reduce="max")[0, 0] == pytest.approx(3.0)
        assert scatter(src, idx, 1, reduce="min")[0, 0] == pytest.approx(-5.0)

    def test_1d_src(self):
        out = scatter(np.array([1.0, 2.0], dtype=np.float32),
                      np.array([1, 1]), dim_size=3)
        assert np.allclose(out, [0.0, 3.0, 0.0])

    def test_empty_slots_are_zero(self):
        out = scatter(np.ones((2, 2), dtype=np.float32), np.array([0, 0]), 4)
        assert np.all(out[1:] == 0)

    def test_dim_size_inferred(self):
        out = scatter(np.ones((2, 1), dtype=np.float32), np.array([0, 4]))
        assert out.shape == (5, 1)

    def test_too_small_dim_size_rejected(self):
        with pytest.raises(KernelError):
            scatter(np.ones((2, 1), dtype=np.float32), np.array([0, 4]), dim_size=3)

    def test_negative_index_rejected(self):
        with pytest.raises(KernelError):
            scatter(np.ones((1, 1), dtype=np.float32), np.array([-1]), 2)

    def test_unknown_reduce_rejected(self):
        with pytest.raises(KernelError):
            scatter(np.ones((1, 1), dtype=np.float32), np.array([0]), 1,
                    reduce="prod")

    def test_length_mismatch_rejected(self):
        with pytest.raises(KernelError):
            scatter(np.ones((3, 1), dtype=np.float32), np.array([0, 1]), 2)

    def test_empty_src(self):
        out = scatter(np.empty((0, 4), dtype=np.float32),
                      np.empty(0, dtype=np.int64), dim_size=3)
        assert out.shape == (3, 4)
        assert np.all(out == 0)

    def test_matches_dense_matmul(self):
        """scatter-sum of gathered rows == adjacency @ features."""
        rng = np.random.default_rng(0)
        n, e, f = 20, 80, 6
        src_ids = rng.integers(0, n, e)
        dst_ids = rng.integers(0, n, e)
        x = rng.standard_normal((n, f)).astype(np.float32)
        msgs = index_select(x, src_ids)
        agg = scatter(msgs, dst_ids, dim_size=n)
        dense = np.zeros((n, n), dtype=np.float32)
        np.add.at(dense, (dst_ids, src_ids), 1.0)
        assert np.allclose(agg, dense @ x, atol=1e-4)


class TestSgemm:
    def test_plain_product(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((5, 4)).astype(np.float32)
        b = rng.standard_normal((4, 3)).astype(np.float32)
        assert np.allclose(sgemm(a, b), a @ b, atol=1e-5)

    def test_alpha_beta_bias(self):
        a = np.eye(2, dtype=np.float32)
        b = np.ones((2, 2), dtype=np.float32)
        c = np.full((2, 2), 10.0, dtype=np.float32)
        bias = np.array([1.0, 2.0], dtype=np.float32)
        out = sgemm(a, b, bias=bias, alpha=2.0, beta=0.5, c=c)
        assert np.allclose(out, 2.0 * b + 5.0 + bias)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(KernelError):
            sgemm(np.ones((2, 3)), np.ones((2, 3)))

    def test_beta_requires_c(self):
        with pytest.raises(KernelError):
            sgemm(np.ones((2, 2)), np.ones((2, 2)), beta=1.0)

    def test_bad_bias_shape(self):
        with pytest.raises(KernelError):
            sgemm(np.ones((2, 2)), np.ones((2, 2)), bias=np.ones(3))

    def test_bad_c_shape(self):
        with pytest.raises(KernelError):
            sgemm(np.ones((2, 2)), np.ones((2, 2)), beta=1.0, c=np.ones((3, 3)))

    def test_1d_operand_rejected(self):
        with pytest.raises(KernelError):
            sgemm(np.ones(4), np.ones((4, 2)))

    def test_output_dtype_is_float32(self):
        out = sgemm(np.ones((2, 2), dtype=np.float64), np.ones((2, 2)))
        assert out.dtype == np.float32


class TestSparseKernels:
    def test_spmm_matches_dense(self):
        rng = np.random.default_rng(2)
        csr = random_csr(rng)
        x = rng.standard_normal((12, 5)).astype(np.float32)
        assert np.allclose(spmm(csr, x), csr.to_dense().array @ x, atol=1e-4)

    def test_spmm_requires_csr(self):
        with pytest.raises(KernelError):
            spmm(np.eye(3), np.ones((3, 2)))

    def test_spmm_dimension_mismatch(self):
        rng = np.random.default_rng(3)
        with pytest.raises(KernelError):
            spmm(random_csr(rng, n=4), np.ones((7, 2), dtype=np.float32))

    def test_spmm_rejects_1d(self):
        rng = np.random.default_rng(3)
        with pytest.raises(KernelError):
            spmm(random_csr(rng, n=4), np.ones(4, dtype=np.float32))

    def test_spgemm_matches_dense(self):
        rng = np.random.default_rng(4)
        a, b = random_csr(rng), random_csr(rng)
        out = spgemm(a, b)
        expected = a.to_dense().array @ b.to_dense().array
        assert np.allclose(out.to_dense().array, expected, atol=1e-3)

    def test_spgemm_requires_csr(self):
        rng = np.random.default_rng(5)
        with pytest.raises(KernelError):
            spgemm(random_csr(rng), np.eye(12))

    def test_spgemm_dimension_mismatch(self):
        rng = np.random.default_rng(6)
        with pytest.raises(KernelError):
            spgemm(random_csr(rng, n=3), random_csr(rng, n=5))


class TestRegistry:
    def test_table_ii_kernels_present(self):
        assert {"indexSelect", "scatter", "sgemm", "SpGEMM", "spmm"} == set(KERNELS)

    def test_short_forms(self):
        assert get_kernel("indexSelect").short_form == "is"
        assert get_kernel("scatter").short_form == "sc"
        assert get_kernel("sgemm").short_form == "sg"
        assert get_kernel("SpGEMM").short_form == "sp"

    def test_models(self):
        assert get_kernel("indexSelect").model == "MP"
        assert get_kernel("scatter").model == "MP"
        assert get_kernel("SpGEMM").model == "SpMM"

    def test_unknown_kernel(self):
        with pytest.raises(KernelError):
            get_kernel("conv2d")

    def test_kernel_table_rows(self):
        rows = kernel_table()
        assert len(rows) == len(KERNELS)
        assert all(len(row) == 4 for row in rows)

    def test_registry_functions_are_callable(self):
        x = np.ones((3, 2), dtype=np.float32)
        out = get_kernel("indexSelect").fn(x, np.array([0, 2]))
        assert out.shape == (2, 2)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 30), st.integers(0, 100), st.integers(1, 6),
       st.sampled_from(REDUCE_OPS), st.integers(0, 2**31 - 1))
def test_scatter_matches_naive_loop(n, e, f, reduce, seed):
    """Property: vectorised scatter equals the obvious per-edge loop."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, n, e)
    src = rng.standard_normal((e, f)).astype(np.float32)
    out = scatter(src, idx, dim_size=n, reduce=reduce)

    expected = np.zeros((n, f), dtype=np.float64)
    counts = np.zeros(n, dtype=np.int64)
    if reduce in ("max", "min"):
        expected[:] = np.inf if reduce == "min" else -np.inf
    for i in range(e):
        if reduce in ("sum", "mean"):
            expected[idx[i]] += src[i]
        elif reduce == "max":
            expected[idx[i]] = np.maximum(expected[idx[i]], src[i])
        else:
            expected[idx[i]] = np.minimum(expected[idx[i]], src[i])
        counts[idx[i]] += 1
    if reduce == "mean":
        nonzero = counts > 0
        expected[nonzero] /= counts[nonzero][:, None]
    expected[counts == 0] = 0.0
    assert np.allclose(out, expected, atol=1e-3)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 40), st.integers(1, 25), st.integers(0, 120),
       st.integers(0, 2**31 - 1))
def test_gather_scatter_roundtrip_equals_spmm(n, f, e, seed):
    """Property: the MP pair (indexSelect + scatter) equals the SpMM kernel
    on the same adjacency — the paper's two computational models agree."""
    rng = np.random.default_rng(seed)
    src_ids = rng.integers(0, n, e)
    dst_ids = rng.integers(0, n, e)
    x = rng.standard_normal((n, f)).astype(np.float32)
    mp = scatter(index_select(x, src_ids), dst_ids, dim_size=n)
    adj = COOMatrix(dst_ids, src_ids, shape=(n, n)).to_csr()
    assert np.allclose(mp, spmm(adj, x), atol=1e-3)
