"""Unit and property tests for the GNN models (GCN, GIN, SAGE)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import record_launches
from repro.core.models import (
    GCN,
    GIN,
    MODEL_NAMES,
    SAGE,
    GNNModel,
    build_model,
    get_model_class,
    layer_dimensions,
    register_model,
)
from repro.core.models.activations import get_activation, relu, sigmoid
from repro.errors import ModelError
from repro.graph import Graph, add_self_loops, normalized_adjacency


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    edge_index = rng.integers(0, 30, size=(2, 120))
    features = rng.standard_normal((30, 12)).astype(np.float32)
    return Graph(edge_index, features=features, name="toy")


class TestLayerDimensions:
    def test_single_layer(self):
        assert layer_dimensions(10, 16, 3, 1) == [(10, 3)]

    def test_two_layers(self):
        assert layer_dimensions(10, 16, 3, 2) == [(10, 16), (16, 3)]

    def test_deep_stack(self):
        dims = layer_dimensions(10, 16, 3, 4)
        assert dims == [(10, 16), (16, 16), (16, 16), (16, 3)]

    def test_invalid(self):
        with pytest.raises(ModelError):
            layer_dimensions(10, 16, 3, 0)
        with pytest.raises(ModelError):
            layer_dimensions(0, 16, 3, 2)


class TestActivations:
    def test_relu(self):
        assert np.allclose(relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-20, 20, 41)
        y = sigmoid(x)
        assert np.all((y > 0) & (y < 1))
        assert np.allclose(y + sigmoid(-x), 1.0, atol=1e-6)

    def test_unknown_activation(self):
        with pytest.raises(ModelError):
            get_activation("gelu")


class TestModelConstruction:
    def test_registry_contains_paper_models(self):
        assert MODEL_NAMES == ("gcn", "gin", "sage")

    def test_aliases(self):
        assert get_model_class("SAG") is SAGE
        assert get_model_class("GraphSAGE") is SAGE

    def test_unknown_model(self):
        with pytest.raises(ModelError):
            build_model("transformer", 8, 16, 3)

    def test_sage_rejects_spmm(self):
        with pytest.raises(ModelError):
            build_model("sage", 8, 16, 3, compute_model="SpMM")

    def test_unknown_compute_model(self):
        with pytest.raises(ModelError):
            build_model("gcn", 8, 16, 3, compute_model="TPU")

    def test_deterministic_weights(self):
        a = build_model("gcn", 8, 16, 3, seed=7)
        b = build_model("gcn", 8, 16, 3, seed=7)
        for la, lb in zip(a.weights, b.weights):
            assert np.array_equal(la["W"], lb["W"])

    def test_different_seeds_differ(self):
        a = build_model("gcn", 8, 16, 3, seed=1)
        b = build_model("gcn", 8, 16, 3, seed=2)
        assert not np.array_equal(a.weights[0]["W"], b.weights[0]["W"])

    def test_parameter_count(self):
        model = build_model("gcn", 8, 16, 3, num_layers=2)
        # layer 1: 8*16 + 16 ; layer 2: 16*3 + 3
        assert model.parameter_count() == 8 * 16 + 16 + 16 * 3 + 3

    def test_register_model(self):
        class Custom(GNNModel):
            name = "custom-test"

            def layer_forward(self, layer, x, graph, state):
                return x @ self.weights[layer]["W"]

        register_model("custom-test", Custom)
        try:
            model = build_model("custom-test", 12, 8, 4)
            assert model.out_features == 4
            with pytest.raises(ModelError):
                register_model("custom-test", Custom)
        finally:
            from repro.core.models.registry import MODELS
            MODELS.pop("custom-test", None)

    def test_register_rejects_non_model(self):
        with pytest.raises(ModelError):
            register_model("bad", dict)
        with pytest.raises(ModelError):
            register_model("", GCN)


class TestForward:
    def test_output_shape(self, graph):
        for name in MODEL_NAMES:
            model = build_model(name, 12, 16, 5)
            out = model(graph)
            assert out.shape == (30, 5)
            assert out.dtype == np.float32

    def test_requires_features(self):
        g = Graph(np.array([[0], [1]]), num_nodes=2)
        model = build_model("gcn", 4, 8, 2)
        with pytest.raises(ModelError):
            model(g)

    def test_feature_override(self, graph):
        model = build_model("gcn", 12, 16, 5)
        alt = np.zeros((30, 12), dtype=np.float32)
        out = model(graph, features=alt)
        # Zero input with zero bias propagates to zero logits.
        assert np.allclose(out, 0.0)

    def test_wrong_feature_shape(self, graph):
        model = build_model("gcn", 12, 16, 5)
        with pytest.raises(ModelError):
            model(graph, features=np.zeros((30, 99), dtype=np.float32))

    def test_num_layers_respected(self, graph):
        with record_launches() as rec:
            build_model("gcn", 12, 16, 5, num_layers=3)(graph)
        sgemms = [l for l in rec.launches if l.kernel == "sgemm"]
        assert len(sgemms) == 3  # one transform per layer


class TestGCNSemantics:
    def test_matches_closed_form(self, graph):
        """One GCN layer equals P @ X @ W + b with P the normalised
        adjacency — the literal Eq. 2."""
        model = GCN(12, 16, 5, num_layers=1, compute_model="MP", seed=0)
        out = model(graph)
        P = normalized_adjacency(graph).to_dense().array
        expected = P @ graph.features @ model.weights[0]["W"] + model.weights[0]["b"]
        assert np.allclose(out, expected, atol=1e-3)

    def test_mp_equals_spmm(self, graph):
        mp = GCN(12, 16, 5, compute_model="MP", seed=4)
        sp = GCN(12, 16, 5, compute_model="SpMM", seed=4)
        assert np.allclose(mp(graph), sp(graph), atol=1e-3)

    def test_spmm_records_spgemm_launches(self, graph):
        model = GCN(12, 16, 5, compute_model="SpMM")
        with record_launches() as rec:
            model(graph)
        kernels = [l.kernel for l in rec.launches]
        assert kernels.count("SpGEMM") == 2  # Fig. 2 normalisation chain
        assert "spmm" in kernels

    def test_mp_records_fig2_kernels(self, graph):
        model = GCN(12, 16, 5, compute_model="MP")
        with record_launches() as rec:
            model(graph)
        kernels = {l.kernel for l in rec.launches}
        assert kernels == {"sgemm", "indexSelect", "scatter"}


class TestGINSemantics:
    def test_matches_closed_form(self, graph):
        """One GIN layer equals MLP((A + (1+eps) I) X) — the literal Eq. 4."""
        model = GIN(12, 16, 5, num_layers=1, compute_model="MP", seed=0,
                    epsilon=0.3)
        out = model(graph)
        A = graph.adjacency_dense().array
        S = A + (1.3) * np.eye(30, dtype=np.float32)
        p = model.weights[0]
        hidden = np.maximum(S @ graph.features @ p["W1"] + p["b1"], 0)
        expected = hidden @ p["W2"] + p["b2"]
        assert np.allclose(out, expected, atol=1e-3)

    def test_mp_equals_spmm(self, graph):
        mp = GIN(12, 16, 5, compute_model="MP", seed=4)
        sp = GIN(12, 16, 5, compute_model="SpMM", seed=4)
        assert np.allclose(mp(graph), sp(graph), atol=1e-3)

    def test_epsilon_affects_output(self, graph):
        a = GIN(12, 16, 5, seed=0, epsilon=0.0)
        b = GIN(12, 16, 5, seed=0, epsilon=0.9)
        assert not np.allclose(a(graph), b(graph))

    def test_aggregates_at_input_width(self, graph):
        """GIN gathers raw features (unlike GCN): its indexSelect moves
        full-width rows — the paper's reason GIN kernels are heavier."""
        with record_launches() as rec:
            GIN(12, 16, 5, compute_model="MP")(graph)
        first_gather = next(l for l in rec.launches if l.kernel == "indexSelect")
        assert first_gather.threads == graph.num_edges * 12


class TestSAGESemantics:
    def test_matches_closed_form(self, graph):
        """One SAGE layer equals W1 x + W2 mean_{N(v)+v}(x) + b (Eq. 5)."""
        model = SAGE(12, 16, 5, num_layers=1, seed=0)
        out = model(graph)
        looped = add_self_loops(graph)
        A = looped.adjacency_dense().array
        deg = np.maximum(A.sum(axis=1, keepdims=True), 1.0)
        mean = (A / deg) @ graph.features
        p = model.weights[0]
        expected = graph.features @ p["W1"] + mean @ p["W2"] + p["b"]
        assert np.allclose(out, expected, atol=1e-3)

    def test_isolated_node_sees_only_itself(self):
        g = Graph(np.array([[0], [1]]), num_nodes=3,
                  features=np.eye(3, dtype=np.float32))
        model = SAGE(3, 8, 2, num_layers=1, seed=0)
        out = model(g)
        p = model.weights[0]
        # Node 2 has no in-edges: mean over {2} is its own feature.
        expected = g.features[2] @ p["W1"] + g.features[2] @ p["W2"] + p["b"]
        assert np.allclose(out[2], expected, atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(["gcn", "gin"]), st.integers(1, 3),
       st.integers(1, 25), st.integers(0, 80), st.integers(0, 2**31 - 1))
def test_mp_spmm_equivalence_property(model_name, layers, nodes, edges, seed):
    """Property: for any graph, the MP and SpMM implementations of a model
    compute the same function — the paper's central comparability premise."""
    rng = np.random.default_rng(seed)
    g = Graph(rng.integers(0, nodes, size=(2, edges)),
              features=rng.standard_normal((nodes, 6)).astype(np.float32),
              num_nodes=nodes)
    mp = build_model(model_name, 6, 8, 4, num_layers=layers,
                     compute_model="MP", seed=seed % 100)
    sp = build_model(model_name, 6, 8, 4, num_layers=layers,
                     compute_model="SpMM", seed=seed % 100)
    # rtol loosened from numpy's 1e-5 default: dense multi-edge graphs
    # (e.g. 1 node with dozens of self-loops over 3 GIN layers) push
    # activations to ~1e5, where reassociated float32 summation alone
    # produces relative error slightly above 1e-5.
    assert np.allclose(mp(g), sp(g), atol=5e-3, rtol=1e-4)
