"""Tests for the plan executor's dispatch, hooks, and error paths."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.graph import Graph
from repro.plan import (
    NORMALIZE_KINDS,
    PlanBuilder,
    PlanExecutor,
    register_normalize,
)


@pytest.fixture()
def graph():
    edge_index = np.array([[0, 1, 2, 2], [1, 2, 0, 1]], dtype=np.int64)
    features = np.arange(12, dtype=np.float32).reshape(3, 4)
    return Graph(edge_index, features=features, name="tiny")


def _gather_plan():
    b = PlanBuilder(model="gcn", flavor="native")
    x = b.input("X", fmt="dense")
    src, dst = b.normalize("edge_endpoints",
                           outputs=(("src", "edge"), ("dst", "edge")))
    messages = b.gather(x, src, tag="t")
    agg = b.scatter_reduce(messages, dst, reduce="sum", tag="t")
    return b.build(agg)


class TestExecution:
    def test_gather_scatter_matches_numpy(self, graph):
        out = PlanExecutor().run(_gather_plan(), graph,
                                 {"X": graph.features})
        expected = np.zeros_like(graph.features)
        np.add.at(expected, graph.dst, graph.features[graph.src])
        assert np.allclose(out, expected)

    def test_elementwise_combine(self, graph):
        b = PlanBuilder(model="gin", flavor="native")
        x = b.input("X")
        y = b.constant(np.ones((3, 4), dtype=np.float32))
        out = b.elementwise("combine", x, y, alpha=0.5)
        plan = b.build(out)
        result = PlanExecutor().run(plan, graph, {"X": graph.features})
        assert np.allclose(result, 1.5 * graph.features + 1.0)

    def test_on_op_hook_sees_every_op(self, graph):
        seen = []
        executor = PlanExecutor(on_op=lambda op, result: seen.append(op.opcode))
        executor.run(_gather_plan(), graph, {"X": graph.features})
        assert seen == ["normalize", "gather", "scatter"]


class TestErrors:
    def test_missing_input_rejected(self, graph):
        with pytest.raises(PlanError):
            PlanExecutor().run(_gather_plan(), graph, {})

    def test_unexpected_input_rejected(self, graph):
        with pytest.raises(PlanError):
            PlanExecutor().run(_gather_plan(), graph,
                               {"X": graph.features, "Y": graph.features})

    def test_unknown_normalize_kind_rejected(self, graph):
        b = PlanBuilder(model="gcn", flavor="native")
        b.input("X")
        out, = b.normalize("does_not_exist", outputs=(("z", "vec"),))
        plan = b.build(out)
        with pytest.raises(PlanError):
            PlanExecutor().run(plan, graph, {"X": graph.features})

    def test_register_normalize_rejects_duplicates(self):
        kind = next(iter(NORMALIZE_KINDS))
        with pytest.raises(PlanError):
            register_normalize(kind, lambda *a: ())

    def test_normalize_arity_mismatch_rejected(self, graph):
        register_normalize("test_arity", lambda g, p, i, t: (1, 2),
                           overwrite=True)
        b = PlanBuilder(model="gcn", flavor="native")
        b.input("X")
        out, = b.normalize("test_arity", outputs=(("one", "vec"),))
        plan = b.build(out)
        with pytest.raises(PlanError):
            PlanExecutor().run(plan, graph, {"X": graph.features})
