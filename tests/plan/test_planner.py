"""Tests for the cost-model planner and the gsuite-adaptive backend.

The acceptance contract: the planner must select SpMM on the
social-network workloads (reddit, livejournal) and MP on the citation
workloads (cora, citeseer) — from the full-size Table IV specs *and*
from scaled live graphs (scaling preserves average degree, hence the
decision).
"""

import numpy as np
import pytest

from repro.core.models import build_model
from repro.datasets import get_spec, load_dataset
from repro.errors import ModelError
from repro.frameworks import get_backend, PipelineSpec
from repro.plan import (
    GraphStats,
    choose_formats,
    choose_shards,
    explain_choice,
    mp_layer_cost,
    shard_setup_cost,
    spmm_layer_cost,
    spmm_setup_cost,
)

#: dataset -> format every layer must use, per the paper-scale stats.
EXPECTED = {
    "cora": "MP",
    "citeseer": "MP",
    "pubmed": "MP",
    "reddit": "SpMM",
    "livejournal": "SpMM",
}


def _dims(spec):
    return [(spec.feature_length, 16), (16, spec.num_classes)]


class TestGraphStats:
    def test_from_spec_matches_table_iv(self):
        stats = GraphStats.from_spec(get_spec("reddit"))
        assert stats.num_nodes == 232_965
        assert stats.avg_degree == pytest.approx(49.8, abs=0.1)
        assert stats.degree_skew > 1.0

    def test_from_graph_measures_live_workload(self):
        graph = load_dataset("cora", scale=0.2, seed=0)
        stats = GraphStats.from_graph(graph)
        assert stats.num_nodes == graph.num_nodes
        assert stats.num_edges == graph.num_edges
        assert stats.feature_width == graph.num_features
        assert stats.degree_skew >= 1.0

    def test_scaling_preserves_average_degree(self):
        full = GraphStats.from_spec(get_spec("reddit"))
        scaled = GraphStats.from_graph(load_dataset("reddit", scale=0.005,
                                                    seed=0))
        assert scaled.avg_degree == pytest.approx(full.avg_degree, rel=0.15)


class TestFormatSelection:
    @pytest.mark.parametrize("dataset,expected", sorted(EXPECTED.items()))
    def test_full_size_spec_decision(self, dataset, expected):
        spec = get_spec(dataset)
        formats = choose_formats(_dims(spec), GraphStats.from_spec(spec))
        assert formats == (expected, expected)

    @pytest.mark.parametrize("dataset,scale", [
        ("cora", 0.3), ("citeseer", 0.3), ("reddit", 0.005),
        ("livejournal", 0.001),
    ])
    def test_scaled_graph_decision_matches(self, dataset, scale):
        graph = load_dataset(dataset, scale=scale, seed=0)
        spec = get_spec(dataset)
        formats = choose_formats(_dims(spec), GraphStats.from_graph(graph))
        assert set(formats) == {EXPECTED[dataset]}

    def test_mp_only_models_never_flip(self):
        stats = GraphStats.from_spec(get_spec("reddit"))
        formats = choose_formats(_dims(get_spec("reddit")), stats,
                                 allowed=("MP",))
        assert formats == ("MP", "MP")

    def test_spmm_only_selection(self):
        stats = GraphStats.from_spec(get_spec("cora"))
        formats = choose_formats(_dims(get_spec("cora")), stats,
                                 allowed=("SpMM",))
        assert formats == ("SpMM", "SpMM")

    def test_costs_scale_with_edges(self):
        small = GraphStats.from_spec(get_spec("cora"))
        large = GraphStats.from_spec(get_spec("reddit"))
        assert mp_layer_cost(large, 64) > mp_layer_cost(small, 64)
        assert spmm_layer_cost(large, 64) > spmm_layer_cost(small, 64)
        assert spmm_setup_cost(large) > spmm_setup_cost(small)

    def test_explain_choice_mentions_every_layer(self):
        spec = get_spec("cora")
        text = explain_choice(_dims(spec), GraphStats.from_spec(spec))
        assert "layer 0" in text and "layer 1" in text


class TestCalibratedWidths:
    """The per-model aggregation-width hook (ROADMAP calibration fix).

    GCN's transform-first MP path multiplies by ``W`` *before* the
    gather/scatter pair, so its MP aggregation runs at the layer's
    output width; its SpMM path propagates raw features at the input
    width.  Input-width aggregators (GIN, SAGE) keep the default.
    """

    def test_hook_defaults_to_input_width(self):
        from repro.core.models import get_model_class
        for name in ("gin", "sage"):
            cls = get_model_class(name)
            assert cls.aggregation_width("MP", 128, 16) == 128
            assert cls.aggregation_width("SpMM", 128, 16) == 128

    def test_gcn_hook_is_format_aware(self):
        from repro.core.models import get_model_class
        gcn = get_model_class("gcn")
        assert gcn.aggregation_width("MP", 128, 16) == 16
        assert gcn.aggregation_width("SpMM", 128, 16) == 128
        gat = get_model_class("gat")
        assert gat.aggregation_width("MP", 128, 16) == 16

    #: The corrected full-size decisions, per model: GCN's Reddit plan
    #: is *mixed* (wide-input layer stays on transform-first MP, the
    #: narrow second layer flips), LiveJournal's width-1 features keep
    #: it all-SpMM, and the input-width aggregators are unchanged.
    CALIBRATED = {
        ("gcn", "cora"): ("MP", "MP"),
        ("gcn", "reddit"): ("MP", "SpMM"),
        ("gcn", "livejournal"): ("SpMM", "SpMM"),
        ("gin", "cora"): ("MP", "MP"),
        ("gin", "reddit"): ("SpMM", "SpMM"),
        ("gin", "livejournal"): ("SpMM", "SpMM"),
        ("sage", "reddit"): ("SpMM", "SpMM"),
    }

    @pytest.mark.parametrize("model,dataset", sorted(CALIBRATED))
    def test_full_size_calibrated_decision(self, model, dataset):
        from repro.core.models import get_model_class
        cls = get_model_class(model)
        spec = get_spec(dataset)
        formats = choose_formats(
            _dims(spec), GraphStats.from_spec(spec),
            allowed=cls.lowerable_formats or cls.supported_compute_models,
            width_hook=cls.aggregation_width)
        assert formats == self.CALIBRATED[(model, dataset)]

    def test_hookless_decision_unchanged(self):
        """Without a hook the original input-width model still holds."""
        spec = get_spec("reddit")
        formats = choose_formats(_dims(spec), GraphStats.from_spec(spec))
        assert formats == ("SpMM", "SpMM")


class TestAdaptiveBackend:
    #: model -> {dataset: expected per-layer formats} on scaled live
    #: graphs with out_features=3 (scaling preserves average degree,
    #: hence the decision).
    EXPECTED_LIVE = {
        ("gcn", "cora"): ("MP", "MP"),
        ("gcn", "reddit"): ("MP", "SpMM"),
        ("gin", "cora"): ("MP", "MP"),
        ("gin", "reddit"): ("SpMM", "SpMM"),
    }

    @pytest.mark.parametrize("model,dataset,scale", [
        ("gcn", "cora", 0.3), ("gcn", "reddit", 0.005),
        ("gin", "cora", 0.3), ("gin", "reddit", 0.005),
    ])
    def test_backend_applies_planner_choice(self, model, dataset, scale):
        graph = load_dataset(dataset, scale=scale, seed=0)
        built = get_backend("gsuite-adaptive").build(
            PipelineSpec(model=model, out_features=3), graph)
        assert built.formats == self.EXPECTED_LIVE[(model, dataset)]
        assert built.plan.layer_formats == built.formats
        out = built.run()
        assert out.shape == (graph.num_nodes, 3)
        assert np.all(np.isfinite(out))

    def test_sage_lowers_to_spmm_on_reddit(self):
        """SAGE is MP-only on the direct path but SpMM-lowerable."""
        graph = load_dataset("reddit", scale=0.005, seed=0)
        built = get_backend("gsuite-adaptive").build(
            PipelineSpec(model="sage", out_features=3), graph)
        assert set(built.formats) == {"SpMM"}
        assert np.all(np.isfinite(built.run()))

    def test_gat_stays_mp_everywhere(self):
        graph = load_dataset("reddit", scale=0.005, seed=0)
        built = get_backend("gsuite-adaptive").build(
            PipelineSpec(model="gat", out_features=3), graph)
        assert set(built.formats) == {"MP"}

    def test_figure_label(self):
        backend = get_backend("gsuite-adaptive")
        assert backend.figure_label(PipelineSpec()) == "gSuite-Adaptive"

    def test_model_rejects_unlowerable_format(self):
        graph = load_dataset("cora", scale=0.1, seed=0)
        model = build_model("gat", in_features=graph.num_features, hidden=8,
                            out_features=3, compute_model="MP")
        with pytest.raises(ModelError):
            model.lower(["SpMM", "SpMM"])


class TestShardCount:
    """choose_shards: working-set driven, setup-cost gated."""

    def test_small_workloads_stay_unsharded(self):
        for dataset in ("cora", "citeseer", "pubmed"):
            spec = get_spec(dataset)
            k = choose_shards(_dims(spec), GraphStats.from_spec(spec))
            assert k <= 3  # citation graphs never shard aggressively
        cora = get_spec("cora")
        assert choose_shards(_dims(cora), GraphStats.from_spec(cora)) == 1

    @pytest.mark.parametrize("dataset", ["reddit", "livejournal"])
    def test_large_graphs_shard(self, dataset):
        spec = get_spec(dataset)
        k = choose_shards(_dims(spec), GraphStats.from_spec(spec))
        assert k > 1

    def test_shard_count_bounded(self):
        spec = get_spec("reddit")
        stats = GraphStats.from_spec(spec)
        assert choose_shards(_dims(spec), stats, max_shards=4) <= 4
        assert choose_shards(_dims(spec), stats) <= stats.num_nodes

    def test_spmm_plans_do_not_shard(self):
        """The fused kernel never materialises the [E, f] messages, so
        an all-SpMM plan has no working set to slice."""
        spec = get_spec("reddit")
        stats = GraphStats.from_spec(spec)
        assert choose_shards(_dims(spec), stats,
                             formats=["SpMM", "SpMM"]) == 1

    def test_setup_cost_scales_with_nodes(self):
        small = GraphStats.from_spec(get_spec("cora"))
        large = GraphStats.from_spec(get_spec("reddit"))
        assert shard_setup_cost(large) > shard_setup_cost(small)

    def test_width_hook_shrinks_gcn_working_set(self):
        """GCN's output-width MP messages imply fewer shards than the
        input-width default on a wide-feature workload."""
        from repro.core.models import get_model_class
        spec = get_spec("reddit")
        stats = GraphStats.from_spec(spec)
        hooked = choose_shards(_dims(spec), stats,
                               width_hook=get_model_class(
                                   "gcn").aggregation_width)
        unhooked = choose_shards(_dims(spec), stats)
        assert hooked <= unhooked
