"""Tests for the cost-model planner and the gsuite-adaptive backend.

The acceptance contract: the planner must select SpMM on the
social-network workloads (reddit, livejournal) and MP on the citation
workloads (cora, citeseer) — from the full-size Table IV specs *and*
from scaled live graphs (scaling preserves average degree, hence the
decision).
"""

import numpy as np
import pytest

from repro.core.models import build_model
from repro.datasets import get_spec, load_dataset
from repro.errors import ModelError
from repro.frameworks import get_backend, PipelineSpec
from repro.plan import (
    GraphStats,
    choose_formats,
    explain_choice,
    mp_layer_cost,
    spmm_layer_cost,
    spmm_setup_cost,
)

#: dataset -> format every layer must use, per the paper-scale stats.
EXPECTED = {
    "cora": "MP",
    "citeseer": "MP",
    "pubmed": "MP",
    "reddit": "SpMM",
    "livejournal": "SpMM",
}


def _dims(spec):
    return [(spec.feature_length, 16), (16, spec.num_classes)]


class TestGraphStats:
    def test_from_spec_matches_table_iv(self):
        stats = GraphStats.from_spec(get_spec("reddit"))
        assert stats.num_nodes == 232_965
        assert stats.avg_degree == pytest.approx(49.8, abs=0.1)
        assert stats.degree_skew > 1.0

    def test_from_graph_measures_live_workload(self):
        graph = load_dataset("cora", scale=0.2, seed=0)
        stats = GraphStats.from_graph(graph)
        assert stats.num_nodes == graph.num_nodes
        assert stats.num_edges == graph.num_edges
        assert stats.feature_width == graph.num_features
        assert stats.degree_skew >= 1.0

    def test_scaling_preserves_average_degree(self):
        full = GraphStats.from_spec(get_spec("reddit"))
        scaled = GraphStats.from_graph(load_dataset("reddit", scale=0.005,
                                                    seed=0))
        assert scaled.avg_degree == pytest.approx(full.avg_degree, rel=0.15)


class TestFormatSelection:
    @pytest.mark.parametrize("dataset,expected", sorted(EXPECTED.items()))
    def test_full_size_spec_decision(self, dataset, expected):
        spec = get_spec(dataset)
        formats = choose_formats(_dims(spec), GraphStats.from_spec(spec))
        assert formats == (expected, expected)

    @pytest.mark.parametrize("dataset,scale", [
        ("cora", 0.3), ("citeseer", 0.3), ("reddit", 0.005),
        ("livejournal", 0.001),
    ])
    def test_scaled_graph_decision_matches(self, dataset, scale):
        graph = load_dataset(dataset, scale=scale, seed=0)
        spec = get_spec(dataset)
        formats = choose_formats(_dims(spec), GraphStats.from_graph(graph))
        assert set(formats) == {EXPECTED[dataset]}

    def test_mp_only_models_never_flip(self):
        stats = GraphStats.from_spec(get_spec("reddit"))
        formats = choose_formats(_dims(get_spec("reddit")), stats,
                                 allowed=("MP",))
        assert formats == ("MP", "MP")

    def test_spmm_only_selection(self):
        stats = GraphStats.from_spec(get_spec("cora"))
        formats = choose_formats(_dims(get_spec("cora")), stats,
                                 allowed=("SpMM",))
        assert formats == ("SpMM", "SpMM")

    def test_costs_scale_with_edges(self):
        small = GraphStats.from_spec(get_spec("cora"))
        large = GraphStats.from_spec(get_spec("reddit"))
        assert mp_layer_cost(large, 64) > mp_layer_cost(small, 64)
        assert spmm_layer_cost(large, 64) > spmm_layer_cost(small, 64)
        assert spmm_setup_cost(large) > spmm_setup_cost(small)

    def test_explain_choice_mentions_every_layer(self):
        spec = get_spec("cora")
        text = explain_choice(_dims(spec), GraphStats.from_spec(spec))
        assert "layer 0" in text and "layer 1" in text


class TestAdaptiveBackend:
    @pytest.mark.parametrize("dataset,scale", [
        ("cora", 0.3), ("reddit", 0.005),
    ])
    def test_backend_applies_planner_choice(self, dataset, scale):
        graph = load_dataset(dataset, scale=scale, seed=0)
        built = get_backend("gsuite-adaptive").build(
            PipelineSpec(model="gcn", out_features=3), graph)
        assert set(built.formats) == {EXPECTED[dataset]}
        assert built.plan.layer_formats == built.formats
        out = built.run()
        assert out.shape == (graph.num_nodes, 3)
        assert np.all(np.isfinite(out))

    def test_sage_lowers_to_spmm_on_reddit(self):
        """SAGE is MP-only on the direct path but SpMM-lowerable."""
        graph = load_dataset("reddit", scale=0.005, seed=0)
        built = get_backend("gsuite-adaptive").build(
            PipelineSpec(model="sage", out_features=3), graph)
        assert set(built.formats) == {"SpMM"}
        assert np.all(np.isfinite(built.run()))

    def test_gat_stays_mp_everywhere(self):
        graph = load_dataset("reddit", scale=0.005, seed=0)
        built = get_backend("gsuite-adaptive").build(
            PipelineSpec(model="gat", out_features=3), graph)
        assert set(built.formats) == {"MP"}

    def test_figure_label(self):
        backend = get_backend("gsuite-adaptive")
        assert backend.figure_label(PipelineSpec()) == "gSuite-Adaptive"

    def test_model_rejects_unlowerable_format(self):
        graph = load_dataset("cora", scale=0.1, seed=0)
        model = build_model("gat", in_features=graph.num_features, hidden=8,
                            out_features=3, compute_model="MP")
        with pytest.raises(ModelError):
            model.lower(["SpMM", "SpMM"])
