"""Partitioner contracts: skew-aware sharding stays invisible.

Three surfaces of the edge-balanced ("edges") and degree-grouped
("degree") partitioners:

* **Partition shape** — edge-balanced bounds cover every row exactly
  once with ~``E / K`` edges per shard; degree grouping is a
  permutation whose merge restores bitwise row order.
* **Parity** — random power-law graphs x model x partitioner x shard
  count: outputs and the ambient (canonical) trace fingerprints are
  bit-for-bit identical to unsharded execution, whatever the split.
* **Boundaries** — the planner's skew gate never picks the
  row-permuting mode, shard-cache keys distinguish partitioners, and
  the degree partitioner refuses batched plans at bind time.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from strategies import PARITY_SETTINGS, power_law_graphs, shard_counts

from repro.cache import get_cache
from repro.core.kernels import record_launches
from repro.datasets import load_dataset
from repro.errors import PlanError
from repro.frameworks import PipelineSpec, get_backend
from repro.plan import (
    CostProfile,
    GraphStats,
    PARTITIONERS,
    ShardingPolicy,
    choose_partitioner,
    degree_grouped_rows,
    edge_balanced_ranges,
    shard_ranges,
)

MODELS = (("gcn", "MP"), ("gin", "SpMM"), ("sage", "MP"))


def _spec(model, compute_model, **overrides):
    params = dict(model=model, compute_model=compute_model,
                  out_features=3, seed=11)
    params.update(overrides)
    return PipelineSpec(**params)


def _run_recorded(pipeline):
    with record_launches() as recorder:
        out = pipeline.run()
    return out, [launch.fingerprint() for launch in recorder.launches]


class TestEdgeBalancedRanges:
    def test_prefix_sum_balances_hub_rows(self):
        # One hub row carrying 10 of 13 edges gets a shard to itself.
        assert edge_balanced_ranges([10, 1, 1, 1], 2) == [(0, 1), (1, 4)]
        assert edge_balanced_ranges([1, 1, 1, 10], 2) == [(0, 3), (3, 4)]

    def test_partition_covers_everything(self):
        rng = np.random.default_rng(0)
        for nodes, k in ((17, 4), (100, 7), (5, 5), (9, 1)):
            counts = rng.integers(0, 20, size=nodes)
            ranges = edge_balanced_ranges(counts, k)
            assert ranges[0][0] == 0 and ranges[-1][1] == nodes
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo

    def test_each_shard_near_fair_share(self):
        rng = np.random.default_rng(1)
        counts = rng.zipf(2.0, size=400).clip(max=50)
        k = 8
        ranges = edge_balanced_ranges(counts, k)
        fair = counts.sum() / k
        heaviest = max(int(counts[lo:hi].sum()) for lo, hi in ranges)
        # A contiguous split can overshoot by at most one row's edges.
        assert heaviest <= fair + counts.max()

    def test_every_shard_keeps_a_row(self):
        # All edges on row 0; the remaining shards still get one row.
        assert edge_balanced_ranges([30, 0, 0, 0], 3) == \
            [(0, 1), (1, 2), (2, 4)]

    def test_degenerate_inputs_fall_back_to_rows(self):
        assert edge_balanced_ranges([0, 0, 0, 0], 2) == shard_ranges(4, 2)
        assert edge_balanced_ranges([], 3) == [(0, 0)]
        assert edge_balanced_ranges([4, 4], 7) == [(0, 1), (1, 2)]


class TestDegreeGroupedRows:
    def test_rows_cover_exactly_once(self):
        rng = np.random.default_rng(2)
        counts = rng.integers(0, 12, size=60)
        shards = degree_grouped_rows(counts, 5)
        assert np.array_equal(np.sort(np.concatenate(shards)),
                              np.arange(60))

    def test_heaviest_rows_group_first(self):
        counts = np.array([1, 9, 1, 8, 1, 7, 1])
        shards = degree_grouped_rows(counts, 3)
        assert set(shards[0]) == {1, 3}          # the two heaviest rows
        assert all(np.all(np.diff(rows) > 0) for rows in shards if len(rows))

    def test_sorted_split_isolates_scattered_hub(self):
        counts = np.array([1, 1, 1, 25, 1, 1, 1, 1, 1])
        shards = degree_grouped_rows(counts, 3)
        assert [rows.tolist() for rows in shards] == \
            [[3], [0], [1, 2, 4, 5, 6, 7, 8]]
        # The contiguous edge-balanced split has to drag the hub's
        # light left-neighbours along; the sorted grouping does not.
        ranges = edge_balanced_ranges(counts, 3)
        contiguous = max(int(counts[lo:hi].sum()) for lo, hi in ranges)
        grouped = max(int(counts[rows].sum()) for rows in shards)
        assert grouped < contiguous


class TestSkewGate:
    FLAT = GraphStats(num_nodes=1000, num_edges=4000, feature_width=16,
                      avg_degree=4.0, density=0.004, degree_skew=2.0)
    SKEWED = GraphStats(num_nodes=1000, num_edges=4000, feature_width=16,
                        avg_degree=4.0, density=0.004, degree_skew=40.0)

    def test_flat_graphs_keep_the_free_split(self):
        assert choose_partitioner(self.FLAT, 4) == "rows"

    def test_skewed_graphs_balance_edges(self):
        assert choose_partitioner(self.SKEWED, 4) == "edges"

    def test_single_shard_never_balances(self):
        assert choose_partitioner(self.SKEWED, 1) == "rows"

    def test_planner_never_permutes_rows(self):
        for skew in (1.0, 8.0, 100.0, 10000.0):
            stats = GraphStats(num_nodes=1000, num_edges=4000,
                               feature_width=16, avg_degree=4.0,
                               density=0.004, degree_skew=skew)
            assert choose_partitioner(stats, 8) != "degree"

    def test_threshold_is_profile_driven(self):
        lax = CostProfile.paper().with_overrides(
            name="lax", shard_skew_threshold=1000.0)
        assert choose_partitioner(self.SKEWED, 4, profile=lax) == "rows"

    def test_bookkeeping_gate_keeps_tiny_graphs_on_rows(self):
        # Near-edgeless: the O(V) prefix-sum pass costs more than the
        # aggregation it would balance.
        stats = GraphStats(num_nodes=100_000, num_edges=10,
                           feature_width=1, avg_degree=0.0001,
                           density=1e-9, degree_skew=50.0)
        assert choose_partitioner(stats, 4) == "rows"


class TestPropertyParity:
    """Random power-law graph x model x partitioner x K: sharded
    execution is bit-for-bit invisible — outputs and canonical trace
    fingerprints both."""

    @PARITY_SETTINGS
    @given(graph=power_law_graphs(), combo=st.sampled_from(MODELS),
           partitioner=st.sampled_from(PARTITIONERS), k=shard_counts())
    def test_bitwise_output_and_trace(self, graph, combo, partitioner, k):
        model, cm = combo
        reference, ref_trace = _run_recorded(
            get_backend("gsuite").build(_spec(model, cm), graph))
        sharded = get_backend("gsuite").build(_spec(model, cm), graph) \
            .configure_sharding(ShardingPolicy(
                num_shards=k, use_cache=False, partitioner=partitioner))
        out, trace = _run_recorded(sharded)
        assert out.dtype == reference.dtype
        assert np.array_equal(out, reference), (model, cm, partitioner, k)
        assert trace == ref_trace, (model, cm, partitioner, k)


class TestPartitionerBoundaries:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("cora", scale=0.15, seed=1)

    def test_unknown_partitioner_refused(self):
        with pytest.raises(PlanError, match="partitioner"):
            ShardingPolicy(num_shards=2, partitioner="hashed")

    def test_cache_keys_distinguish_partitioners(self, graph):
        cache = get_cache()
        for partitioner in PARTITIONERS:
            built = get_backend("gsuite").build(_spec("gcn", "MP"), graph) \
                .configure_sharding(ShardingPolicy(
                    num_shards=3, use_cache=True, partitioner=partitioner))
            built.run()
        # 2 MP layers x 3 shards x 3 partitioners with no key
        # collisions: had two partitioners shared a key, the later run
        # would hit the earlier entry and store fewer than 18.
        shard_entries = [e for e in cache.entries() if e.kind == "shard"]
        assert len(shard_entries) == 18

    def test_shard_report_names_partitioner(self, graph):
        built = get_backend("gsuite").build(_spec("gcn", "MP"), graph) \
            .configure_sharding(ShardingPolicy(
                num_shards=3, use_cache=False, partitioner="edges"))
        built.run()
        for dispatch in built._executor.shard_report:
            assert dispatch.partitioner == "edges"
            assert dispatch.num_shards == 3

    def test_degree_refuses_batched_plans(self):
        from repro.core.config import SuiteConfig
        from repro.core.pipeline import GNNPipeline
        pipeline = GNNPipeline(SuiteConfig(
            dataset="cora", scale=0.1, batch=2, shards=2,
            partitioner="degree"))
        with pytest.raises(PlanError, match="degree"):
            pipeline.run()

    def test_rows_and_edges_compose_with_batching(self):
        from repro.core.config import SuiteConfig
        from repro.core.pipeline import GNNPipeline
        outputs = {}
        for partitioner in ("rows", "edges"):
            pipeline = GNNPipeline(SuiteConfig(
                dataset="cora", scale=0.1, batch=2, shards=2,
                partitioner=partitioner))
            outputs[partitioner] = pipeline.run()
        assert np.array_equal(outputs["rows"], outputs["edges"])
