"""Fusion parity: fused plans are invisible except for speed.

The fusion contract (see :mod:`repro.plan.fusion`) is bit-for-bit
output equality with the unfused plan, under every execution mode —
unsharded, sharded in-process, sharded over the pool — plus a
*documented trace mapping*: fused launches declare the legacy launches
they replace, so expanding ``replaces`` reproduces the unfused
``(kernel, tag)`` sequence exactly.  These tests pin that contract for
every model x backend x {fused, unfused} x shard count, the legality
edge cases (a value with two consumers must block fusion), the
streaming kernel's destination blocking, the planner's cost-model
gate, and the cache-key bugfix (fused and unfused plans never share a
fingerprint).
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cache import get_cache
from repro.core.kernels import fused_gather_scatter, index_select, \
    record_launches, scatter
from repro.datasets import load_dataset
from repro.errors import BackendError, ConfigError
from repro.frameworks import get_backend, PipelineSpec
from repro.plan import (
    FusedElementwise,
    FusedGatherScatter,
    FusionPolicy,
    PlanBuilder,
    ShardingPolicy,
    choose_fusion,
    find_shard_groups,
    fuse_plan,
    legacy_trace,
)
from repro.plan.planner import GraphStats
from strategies import (
    FUSABLE_COMBOS,
    PARITY_SETTINGS,
    fusable_combos,
    power_law_graphs,
    shard_counts,
)

#: Force every pattern so tiny test graphs exercise the fused kernels.
FORCE = FusionPolicy()


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", scale=0.15, seed=1)


def _spec(model, compute_model):
    return PipelineSpec(model=model, compute_model=compute_model, seed=5)


def _run_recorded(pipeline):
    with record_launches() as recorder:
        out = pipeline.run()
    return out, recorder.launches


class TestFusionPass:
    """Structural properties of the plan rewrite."""

    def test_gather_scatter_pairs_fuse(self, graph):
        built = get_backend("gsuite").build(_spec("gcn", "MP"), graph)
        fused = fuse_plan(built.plan, FORCE)
        kinds = [op.opcode for op in fused.ops]
        assert kinds.count("fused_gather_scatter") == 2  # one per layer
        assert "gather" not in kinds and "scatter" not in kinds
        fused.validate()
        assert fused.meta["fusion"]["gather_scatter"] == 2
        from repro.plan.fusion import structure_digest
        assert fused.meta["fused_from"] == structure_digest(built.plan)
        assert structure_digest(fused) != structure_digest(built.plan)

    def test_sgemm_epilogue_folds_activation(self, graph):
        built = get_backend("gsuite").build(_spec("gin", "SpMM"), graph)
        fused = fuse_plan(built.plan, FORCE)
        epilogues = [op for op in fused.ops
                     if op.opcode == "sgemm" and op.activation]
        # GIN: the MLP's inner relu per layer + the inter-layer relu.
        assert len(epilogues) == 3
        assert {op.activation for op in epilogues} == {"relu"}
        assert fused.meta["fusion"]["sgemm_epilogue"] == 3

    def test_elementwise_chain_collapses(self, graph):
        built = get_backend("gsuite").build(_spec("sage", "MP"), graph)
        fused = fuse_plan(built.plan, FORCE)
        chains = [op for op in fused.ops
                  if isinstance(op, FusedElementwise)]
        assert len(chains) == 1          # layer-0 add + inter-layer relu
        assert chains[0].function == "add+relu"

    def test_fused_plan_op_count_shrinks(self, graph):
        for backend, model, cm in FUSABLE_COMBOS:
            built = get_backend(backend).build(_spec(model, cm), graph)
            if built.plan is None:
                continue
            fused = fuse_plan(built.plan, FORCE)
            assert len(fused.ops) < len(built.plan.ops), (backend, model)

    def test_empty_policy_is_identity(self, graph):
        built = get_backend("gsuite").build(_spec("gcn", "MP"), graph)
        off = FusionPolicy(gather_scatter=False, sgemm_epilogue=False,
                           elementwise_chain=False)
        assert fuse_plan(built.plan, off) is built.plan

    def test_bias_fold_requires_constant_vec(self):
        """An add_bias whose operand is a runtime value must not fold."""
        builder = PlanBuilder("t", "t")
        x = builder.input("X", "dense")
        w = builder.constant(np.eye(3, dtype=np.float32), "W")
        runtime_bias = builder.input("B", "vec")     # not a constant
        h = builder.sgemm(x, w, tag="t")
        out = builder.elementwise("add_bias", h, runtime_bias)
        plan = builder.build(out)
        fused = fuse_plan(plan, FORCE)
        sgemms = [op for op in fused.ops if op.opcode == "sgemm"]
        assert sgemms[0].bias is None               # nothing folded


class TestSpMMEpilogue:
    """Pattern (d): trailing bias add / activation fold into the SpMM
    launch itself, mirroring the SGEMM epilogue."""

    @staticmethod
    def _tiny_graph():
        from repro.graph import Graph
        edge_index = np.array([[0, 1, 2, 2, 3], [1, 2, 0, 1, 0]],
                              dtype=np.int64)
        rng = np.random.default_rng(3)
        features = rng.standard_normal((4, 5)).astype(np.float32)
        return Graph(edge_index, features=features, name="tiny")

    @staticmethod
    def _plan(width):
        b = PlanBuilder("t", "t")
        x = b.input("X", fmt="dense")
        a, = b.normalize("mean_adjacency", outputs=(("A", "csr"),))
        h = b.spmm(a, x, tag="agg")
        bias = b.constant(np.linspace(-0.5, 0.5, width,
                                      dtype=np.float32), "B")
        hb = b.elementwise("add_bias", h, bias)
        return b.build(b.activation(hb, "relu"))

    def test_epilogue_folds_into_spmm(self):
        plan = self._plan(5)
        fused = fuse_plan(plan, FORCE)
        spmms = [op for op in fused.ops if op.opcode == "spmm"]
        assert len(spmms) == 1
        assert spmms[0].bias is not None
        assert spmms[0].activation == "relu"
        assert fused.meta["fusion"]["spmm_epilogue"] == 1
        kinds = [op.opcode for op in fused.ops]
        assert "elementwise" not in kinds and "activation" not in kinds

    def test_bitwise_output_and_mapped_trace(self):
        from repro.plan import PlanExecutor
        graph = self._tiny_graph()
        plan = self._plan(graph.num_features)
        fused = fuse_plan(plan, FORCE)
        with record_launches() as ref_rec:
            reference = PlanExecutor().run(plan, graph,
                                           {"X": graph.features})
        with record_launches() as rec:
            out = PlanExecutor().run(fused, graph, {"X": graph.features})
        assert out.dtype == reference.dtype
        assert np.array_equal(out, reference)
        assert legacy_trace(rec.launches) == \
            [(l.kernel, l.tag) for l in ref_rec.launches]

    def test_runtime_bias_blocks_fold(self):
        b = PlanBuilder("t", "t")
        x = b.input("X", fmt="dense")
        a, = b.normalize("mean_adjacency", outputs=(("A", "csr"),))
        h = b.spmm(a, x, tag="agg")
        runtime_bias = b.input("B", fmt="vec")       # not a constant
        plan = b.build(b.elementwise("add_bias", h, runtime_bias))
        fused = fuse_plan(plan, FORCE)
        spmms = [op for op in fused.ops if op.opcode == "spmm"]
        assert spmms[0].bias is None                 # nothing folded


class TestCrossLayerFusion:
    """Pattern (e): an epilogue-complete SGEMM merges into the next
    layer's SpMM when every layer aggregates in SpMM format."""

    POLICY = FusionPolicy(cross_layer=True)

    def test_gcn_spmm_layers_merge(self, graph):
        built = get_backend("gsuite").build(_spec("gcn", "SpMM"), graph)
        fused = fuse_plan(built.plan, self.POLICY)
        merged = [op for op in fused.ops
                  if op.opcode == "fused_transform_spmm"]
        assert merged
        assert fused.meta["fusion"]["cross_layer"] == len(merged)

    def test_off_by_default(self, graph):
        built = get_backend("gsuite").build(_spec("gcn", "SpMM"), graph)
        fused = fuse_plan(built.plan, FORCE)
        assert all(op.opcode != "fused_transform_spmm"
                   for op in fused.ops)

    def test_format_instability_blocks_merge(self, graph):
        # MP-format layers aggregate via gather/scatter — no adjacent
        # SGEMM -> SpMM boundary exists, so the pattern never fires.
        built = get_backend("gsuite").build(_spec("gcn", "MP"), graph)
        fused = fuse_plan(built.plan, self.POLICY)
        assert all(op.opcode != "fused_transform_spmm"
                   for op in fused.ops)
        assert fused.meta["fusion"]["cross_layer"] == 0

    @pytest.mark.parametrize("model", ("gcn", "gin"))
    def test_bitwise_output_and_mapped_trace(self, graph, model):
        spec = _spec(model, "SpMM")
        reference, ref_launches = _run_recorded(
            get_backend("gsuite").build(spec, graph))
        fused, fused_launches = _run_recorded(
            get_backend("gsuite").build(spec, graph)
            .configure_fusion(self.POLICY))
        assert fused.dtype == reference.dtype
        assert np.array_equal(fused, reference)      # bit-for-bit
        assert legacy_trace(fused_launches) == \
            [(l.kernel, l.tag) for l in ref_launches]

    @pytest.mark.parametrize("partitioner", ("rows", "edges"))
    def test_composes_with_sharding(self, graph, partitioner):
        spec = _spec("gcn", "SpMM")
        ref, ref_launches = _run_recorded(
            get_backend("gsuite").build(spec, graph)
            .configure_fusion(self.POLICY))
        sharded = get_backend("gsuite").build(spec, graph) \
            .configure_fusion(self.POLICY) \
            .configure_sharding(ShardingPolicy(num_shards=3,
                                               partitioner=partitioner))
        out, launches = _run_recorded(sharded)
        assert np.array_equal(out, ref)
        assert [l.fingerprint() for l in launches] == \
            [l.fingerprint() for l in ref_launches]


class TestReuseBlocksFusion:
    """The liveness analysis: a value with two consumers stays put."""

    def _mp_plan(self, reused):
        """Gather -> ScatterReduce where the messages are optionally
        also consumed by a second op (an elementwise add)."""
        builder = PlanBuilder("t", "t")
        x = builder.input("X", "dense")
        src = builder.input("src", "edge")
        dst = builder.input("dst", "edge")
        messages = builder.gather(x, src, tag="t")
        agg = builder.scatter_reduce(messages, dst, tag="t")
        if reused:
            # Second consumer of the gathered messages.
            out = builder.elementwise("add", messages, messages)
            out = builder.elementwise("add", agg, out)
        else:
            out = agg
        return builder.build(out)

    def test_single_consumer_fuses(self):
        fused = fuse_plan(self._mp_plan(reused=False), FORCE)
        assert any(isinstance(op, FusedGatherScatter) for op in fused.ops)

    def test_reused_messages_block_gather_scatter(self):
        fused = fuse_plan(self._mp_plan(reused=True), FORCE)
        assert not any(isinstance(op, FusedGatherScatter)
                       for op in fused.ops)
        kinds = [op.opcode for op in fused.ops]
        assert "gather" in kinds and "scatter" in kinds

    def test_reused_elementwise_blocks_chain(self):
        """An elementwise value read by two consumers stays a plan value."""
        builder = PlanBuilder("t", "t")
        a = builder.input("A", "dense")
        b = builder.input("B", "dense")
        summed = builder.elementwise("add", a, b)
        act = builder.activation(summed, "relu")
        # Second consumer of `summed`: it must survive as an SSA value.
        out = builder.elementwise("add", act, summed)
        fused = fuse_plan(builder.build(out), FORCE)
        # The producing add must stay a standalone op (its output is
        # read twice); a chain may legally start *after* it, but can
        # never absorb it.
        standalone = [op for op in fused.ops
                      if op.opcode == "elementwise"
                      and op.out.vid == summed.vid]
        assert len(standalone) == 1
        for op in fused.ops:
            if isinstance(op, FusedElementwise):
                assert summed.vid not in {s.out.vid for s in op.stages}

    def test_reused_sgemm_output_blocks_epilogue(self):
        builder = PlanBuilder("t", "t")
        x = builder.input("X", "dense")
        w = builder.constant(np.eye(2, dtype=np.float32), "W")
        h = builder.sgemm(x, w, tag="t")
        act = builder.activation(h, "relu")
        out = builder.elementwise("add", act, h)     # h read twice
        fused = fuse_plan(builder.build(out), FORCE)
        sgemms = [op for op in fused.ops if op.opcode == "sgemm"]
        assert sgemms[0].activation == ""


class TestFusedParity:
    """Drawn (backend, model, compute model) x shard count x random
    power-law graph: outputs bit-for-bit, traces equivalent under the
    replaces mapping."""

    @PARITY_SETTINGS
    @given(graph=power_law_graphs(), combo=fusable_combos(),
           k=shard_counts())
    def test_bitwise_output_and_mapped_trace(self, graph, combo, k):
        backend, model, cm = combo
        spec = _spec(model, cm)
        reference, ref_launches = _run_recorded(
            get_backend(backend).build(spec, graph))
        fused_pipeline = get_backend(backend).build(spec, graph) \
            .configure_fusion(FORCE)
        if k > 1:
            fused_pipeline.configure_sharding(
                ShardingPolicy(num_shards=k, use_cache=False))
        fused, fused_launches = _run_recorded(fused_pipeline)
        assert fused.dtype == reference.dtype
        assert np.array_equal(fused, reference)      # bit-for-bit
        assert legacy_trace(fused_launches) == \
            [(l.kernel, l.tag) for l in ref_launches]

    @PARITY_SETTINGS
    @given(graph=power_law_graphs(), combo=fusable_combos(),
           k=st.sampled_from((2, 7)))
    def test_sharded_fused_trace_matches_unsharded_fused(
            self, graph, combo, k):
        """Sharding a fused plan keeps PR 3's contract: fingerprint-
        identical traces against the unsharded fused run."""
        backend, model, cm = combo
        spec = _spec(model, cm)
        unsharded = get_backend(backend).build(spec, graph) \
            .configure_fusion(FORCE)
        ref, ref_launches = _run_recorded(unsharded)
        sharded = get_backend(backend).build(spec, graph) \
            .configure_fusion(FORCE) \
            .configure_sharding(ShardingPolicy(num_shards=k,
                                               use_cache=False))
        out, launches = _run_recorded(sharded)
        assert np.array_equal(out, ref)
        assert [l.fingerprint() for l in launches] == \
            [l.fingerprint() for l in ref_launches]

    def test_pooled_fused_dispatch_is_identical(self, graph):
        """jobs > 1 ships fused sub-plans through worker processes."""
        spec = _spec("gin", "MP")
        ref, ref_launches = _run_recorded(
            get_backend("gsuite").build(spec, graph).configure_fusion(FORCE))
        pooled = get_backend("gsuite").build(spec, graph) \
            .configure_fusion(FORCE) \
            .configure_sharding(ShardingPolicy(num_shards=3, jobs=2))
        out, launches = _run_recorded(pooled)
        assert np.array_equal(out, ref)
        assert [l.fingerprint() for l in launches] == \
            [l.fingerprint() for l in ref_launches]

    def test_inprocess_fused_path_skips_task_machinery(self, graph):
        """The jobs=1 fused slice-dispatch-merge path: shard-suffixed
        fused launches on the shard trace, no shard cache entries."""
        cache = get_cache()
        before = cache.stats.to_dict()
        built = get_backend("gsuite").build(_spec("gin", "MP"), graph) \
            .configure_fusion(FORCE) \
            .configure_sharding(ShardingPolicy(num_shards=4))
        with record_launches():
            built.run()
        tags = [launch.tag for launch in built._executor.shard_trace]
        assert any("@shard1/4" in tag for tag in tags)
        assert any(tag.endswith("@merge") for tag in tags)
        kernels = {launch.kernel for launch in built._executor.shard_trace}
        assert "fusedGatherScatter" in kernels
        assert "indexSelect" not in kernels          # nothing materialised
        after = cache.stats.to_dict()
        assert after["stores"] == before["stores"]   # no shard caching

    def test_pyg_refuses_fusion(self, graph):
        built = get_backend("pyg").build(_spec("gcn", "MP"), graph)
        with pytest.raises(BackendError):
            built.configure_fusion(FORCE)


class TestShardLocalTails:
    """local_tails=True runs SGEMM/Activation layer tails inside the
    shard.  Fused and unfused plans under the same tail policy match
    each other bit-for-bit (identical per-shard kernel calls); against
    the *unsharded* run the tail SGEMM is numerically equivalent but
    only allclose-guaranteed (BLAS GEMM blocking varies with the row
    count — the documented local_tails caveat)."""

    POLICY = ShardingPolicy(num_shards=3, local_tails=True, use_cache=False)

    @pytest.mark.parametrize("model,cm", [("gcn", "SpMM"), ("gin", "SpMM"),
                                          ("gcn", "MP"), ("gin", "MP"),
                                          ("sage", "MP"), ("gat", "MP")])
    def test_fused_equals_unfused_under_same_tails(self, graph, model, cm):
        spec = _spec(model, cm)
        unfused = get_backend("gsuite").build(spec, graph) \
            .configure_sharding(self.POLICY)
        fused = get_backend("gsuite").build(spec, graph) \
            .configure_fusion(FORCE).configure_sharding(self.POLICY)
        assert np.array_equal(unfused.run(), fused.run())

    @pytest.mark.parametrize("model,cm", [("gcn", "SpMM"), ("gin", "MP")])
    def test_tails_match_unsharded_function(self, graph, model, cm):
        spec = _spec(model, cm)
        reference = get_backend("gsuite").build(spec, graph).run()
        tailed = get_backend("gsuite").build(spec, graph) \
            .configure_sharding(self.POLICY)
        assert np.allclose(tailed.run(), reference, atol=1e-5)

    def test_tail_covers_whole_layer(self, graph):
        """GCN-SpMM: spmm + sgemm(+bias) + activation in one group."""
        built = get_backend("gsuite").build(_spec("gcn", "SpMM"), graph)
        groups = find_shard_groups(built.plan, local_tails=True)
        assert [g.kind for g in groups] == ["spmm", "spmm"]
        assert len(groups[0].tail) == 2              # sgemm + activation
        assert len(groups[0].positions) == 3
        # Fused plan: the tail is a single epilogue-carrying sgemm.
        fused = fuse_plan(built.plan, FORCE)
        fused_groups = find_shard_groups(fused, local_tails=True)
        assert len(fused_groups[0].tail) == 1
        assert fused_groups[0].tail[0].activation == "relu"

    def test_runtime_operand_stops_tail(self, graph):
        """GIN's combine reads the layer input x -> tail must stop."""
        built = get_backend("gsuite").build(_spec("gin", "MP"), graph)
        groups = find_shard_groups(built.plan, local_tails=True)
        assert all(not g.tail for g in groups)

    def test_tails_captured_in_shard_trace(self, graph):
        built = get_backend("gsuite").build(_spec("gcn", "SpMM"), graph) \
            .configure_fusion(FORCE).configure_sharding(self.POLICY)
        with record_launches() as recorder:
            built.run()
        shard_kernels = [launch.kernel
                         for launch in built._executor.shard_trace]
        assert "sgemm" in shard_kernels              # tail ran shard-local
        # The ambient (canonical) trace still shows one logical sgemm
        # per layer, epilogue included.
        sgemms = [l for l in recorder.launches if l.kernel == "sgemm"]
        assert len(sgemms) == 2
        assert sgemms[0].epilogue == "relu"


class TestStreamingKernel:
    """The fused kernel's destination blocking is exact and bounded."""

    def _workload(self, edges=4000, nodes=300, width=9, seed=3):
        rng = np.random.default_rng(seed)
        source = rng.standard_normal((nodes, width)).astype(np.float32)
        src = rng.integers(0, nodes, size=edges)
        dst = rng.integers(0, nodes, size=edges)
        scale = rng.standard_normal(edges).astype(np.float32)
        return source, src, dst, scale

    @pytest.mark.parametrize("reduce", ["sum", "mean", "max", "min"])
    def test_multi_block_matches_unfused(self, reduce):
        source, src, dst, scale = self._workload()
        unfused = scatter(index_select(source, src) * scale[:, None], dst,
                          dim_size=source.shape[0], reduce=reduce)
        # Tiny block budget: forces many destination blocks.
        fused = fused_gather_scatter(source, src, dst, source.shape[0],
                                     scale=scale, reduce=reduce,
                                     block_bytes=2048)
        assert np.array_equal(fused, unfused)

    def test_single_block_matches_unfused(self):
        source, src, dst, _ = self._workload(edges=50, nodes=20, width=3)
        unfused = scatter(index_select(source, src), dst,
                          dim_size=source.shape[0])
        fused = fused_gather_scatter(source, src, dst, source.shape[0])
        assert np.array_equal(fused, unfused)

    def test_launch_declares_replaced_kernels(self):
        source, src, dst, _ = self._workload(edges=64, nodes=16, width=4)
        with record_launches() as recorder:
            fused_gather_scatter(source, src, dst, source.shape[0],
                                 tag="l0", gather_tag="g0")
        launch, = recorder.launches
        assert launch.kernel == "fusedGatherScatter"
        assert launch.replaces == ("indexSelect:g0", "scatter:l0")
        assert launch.atomic
        assert launch.mix.total > 0

    def test_validation_errors(self):
        source, src, dst, _ = self._workload(edges=10, nodes=8, width=2)
        with pytest.raises(Exception):
            fused_gather_scatter(source[:, 0], src, dst, 8)   # 1-D source
        with pytest.raises(Exception):
            fused_gather_scatter(source, src[:5], dst, 8)     # length skew
        with pytest.raises(Exception):
            fused_gather_scatter(source, src, dst, 8, reduce="prod")


class TestRandomizedFusion:
    """Property-style parity over seeded adversarial graphs (duplicate
    edges, isolated nodes, empty edge sets, ragged shard counts)."""

    MODELS = (("gcn", "MP"), ("gcn", "SpMM"), ("gin", "MP"),
              ("gin", "SpMM"), ("sage", "MP"), ("gat", "MP"))

    def _random_graph(self, rng, case):
        from repro.graph import Graph
        num_nodes = int(rng.integers(4, 40))
        reachable = max(1, int(rng.integers(1, num_nodes + 1)))
        num_edges = int(rng.integers(0, 4 * num_nodes))
        src = rng.integers(0, reachable, size=num_edges)
        dst = rng.integers(0, reachable, size=num_edges)
        if num_edges > 2:
            src[1], dst[1] = src[0], dst[0]           # duplicate edge
        features = rng.standard_normal(
            (num_nodes, int(rng.integers(1, 12)))).astype(np.float32)
        return Graph(np.vstack([src, dst]), num_nodes=num_nodes,
                     features=features, name=f"fusion-random-{case}")

    def test_random_graphs_fuse_identically(self):
        rng = np.random.default_rng(20260731)
        for case in range(12):
            graph = self._random_graph(rng, case)
            model, cm = self.MODELS[case % len(self.MODELS)]
            spec = PipelineSpec(model=model, compute_model=cm,
                                out_features=int(rng.integers(2, 6)),
                                hidden=int(rng.integers(2, 9)),
                                seed=int(rng.integers(0, 100)))
            reference = get_backend("gsuite").build(spec, graph).run()
            fused_pipeline = get_backend("gsuite").build(spec, graph) \
                .configure_fusion(FORCE)
            num_shards = int(rng.integers(1, graph.num_nodes + 3))
            if num_shards > 1:
                fused_pipeline.configure_sharding(
                    ShardingPolicy(num_shards=num_shards))
            fused = fused_pipeline.run()
            assert np.array_equal(fused, reference), \
                f"case {case}: {model}/{cm} K={num_shards}"


class TestPlannerFusion:
    """choose_fusion prices the streaming fusion from the statistics."""

    def _stats(self, dataset, scale=1.0):
        from repro.datasets import get_spec
        spec = get_spec(dataset)
        stats = GraphStats.from_spec(spec)
        if scale != 1.0:
            stats = GraphStats(
                num_nodes=int(stats.num_nodes * scale),
                num_edges=int(stats.num_edges * scale),
                feature_width=stats.feature_width,
                avg_degree=stats.avg_degree, density=stats.density,
                degree_skew=stats.degree_skew)
        return stats

    def test_big_mp_workload_fuses(self):
        dims = [(602, 16), (16, 41)]
        policy = choose_fusion(dims, self._stats("reddit"))
        assert policy.gather_scatter
        assert policy.source == "planner"

    def test_tiny_workload_keeps_gather_scatter(self):
        dims = [(1433, 16), (16, 7)]
        stats = self._stats("cora", scale=0.15)
        policy = choose_fusion(dims, stats,
                               formats=["MP", "MP"],
                               width_hook=lambda fmt, fi, fo: fo)
        assert not policy.gather_scatter          # messages fit cache
        assert policy.sgemm_epilogue              # zero-overhead: always on
        assert policy.elementwise_chain

    def test_spmm_layers_exert_no_pressure(self):
        dims = [(602, 16), (16, 41)]
        policy = choose_fusion(dims, self._stats("reddit"),
                               formats=["SpMM", "SpMM"])
        assert not policy.gather_scatter

    def test_fused_plans_relax_shard_pressure(self):
        from repro.plan import choose_shards
        dims = [(602, 16), (16, 41)]
        stats = self._stats("reddit")
        unfused_k = choose_shards(dims, stats)
        assert unfused_k > 1
        assert choose_shards(dims, stats, fused=True) == 1

    def test_pipeline_auto_skips_fusion_on_tiny_graphs(self, graph):
        from repro.core import GNNPipeline, SuiteConfig
        pipe = GNNPipeline(SuiteConfig(dataset="cora", model="gcn"),
                           graph=graph)
        built = pipe.build()
        # gcn messages at cora scale sit far under the stream budget:
        # the planner leaves gather/scatter unfused...
        assert not any(isinstance(op, FusedGatherScatter)
                       for op in built.plan.ops)
        # ...while the zero-overhead patterns still apply.
        assert built.fusion is not None and built.fusion.sgemm_epilogue


class TestConfigAndCli:
    def test_config_validates_fuse(self):
        from repro.core import SuiteConfig
        assert SuiteConfig(fuse="off").fuse == "off"
        with pytest.raises(ConfigError):
            SuiteConfig(fuse="sometimes")

    def test_plan_command_reports_fusion(self, graph, capsys):
        from repro.cli import main
        assert main(["plan", "--dataset", "cora", "--scale", "0.1",
                     "--model", "gin", "--fuse", "force"]) == 0
        out = capsys.readouterr().out
        assert "fusion: " in out
        assert "gather+scatter x2" in out
        assert "fused_gather_scatter" in out

    def test_no_fuse_escape_hatch(self, graph, capsys):
        from repro.cli import main
        assert main(["plan", "--dataset", "cora", "--scale", "0.1",
                     "--no-fuse"]) == 0
        out = capsys.readouterr().out
        assert "fusion: off" in out
        assert "fused_gather_scatter" not in out

    def test_forced_fusion_on_pyg_is_an_error(self, capsys):
        from repro.cli import main
        assert main(["run", "--dataset", "cora", "--scale", "0.1",
                     "--framework", "pyg", "--fuse", "force"]) == 2
        assert "fusion" in capsys.readouterr().err

    def test_auto_fusion_declines_on_pyg(self, capsys):
        from repro.cli import main
        assert main(["run", "--dataset", "cora", "--scale", "0.1",
                     "--framework", "pyg"]) == 0


class TestCacheKeys:
    """The cache-key bugfix: fused and unfused plans stay distinct."""

    def test_fingerprints_differ(self, graph):
        built = get_backend("gsuite").build(_spec("gcn", "MP"), graph)
        fused = fuse_plan(built.plan, FORCE)
        assert fused.fingerprint() != built.plan.fingerprint()

    def test_fused_shard_entries_are_distinct(self, graph):
        """Pooled fused sub-plans cache under their own keys, without
        clobbering the unfused entries (PR 3's kind 'shard').  Workers
        write from their own processes, so entries are counted on disk.
        """
        cache = get_cache()
        spec = _spec("gin", "MP")

        def _entries():
            shard_dir = cache.root / "shard"
            return set(path.name for path in shard_dir.glob("*.pkl")) \
                if shard_dir.is_dir() else set()

        def _run(fused, jobs):
            built = get_backend("gsuite").build(spec, graph)
            if fused:
                built.configure_fusion(FORCE)
            built.configure_sharding(
                ShardingPolicy(num_shards=2, jobs=jobs, use_cache=True))
            return built.run()

        first = _run(fused=False, jobs=1)
        unfused_entries = _entries()
        assert unfused_entries                       # mp sub-plans stored
        # Pooled fused dispatch (jobs=1 streams in-process and skips
        # the shard cache by design).
        second = _run(fused=True, jobs=2)
        fused_entries = _entries() - unfused_entries
        assert fused_entries                         # new, distinct keys
        assert unfused_entries <= _entries()         # nothing clobbered
        assert np.array_equal(first, second)

    def test_cache_info_reports_plan_kind(self, graph, capsys):
        from repro.cli import main
        get_backend("gsuite").build(_spec("gcn", "MP"), graph)
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "plan" in out
