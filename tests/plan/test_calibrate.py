"""Tests for the CostProfile subsystem and ``gsuite calibrate``.

Three contracts:

* **Persistence** — profiles round-trip through JSON exactly; wrong
  schema versions, unknown fields and invalid constants *refuse* to
  load (a stale or hand-mangled profile must never silently steer the
  planner).
* **Paper parity** — the default profile is the paper's static
  constants bit-for-bit: every gate decision with ``profile=None`` is
  identical to an explicit :meth:`CostProfile.paper`, across the same
  dataset grid the planner acceptance tests pin.
* **Calibration** — a fit on tiny synthetic cells produces a loadable,
  validated profile with documented fallbacks, and the ``--check``
  replay scores decisions against measured timings.
"""

import math

import pytest

from repro.datasets import get_spec
from repro.errors import CalibrationError
from repro.plan import (
    CostProfile,
    GraphStats,
    choose_batching,
    choose_formats,
    choose_fusion,
    choose_shards,
    default_profile_path,
    explain_choice,
    resolve_cost_profile,
)
from repro.plan.calibrate import (
    MicroCell,
    check_decisions,
    fit_profile,
    host_budgets,
    micro_cells,
)
from repro.plan.planner import (
    fusion_gain,
    mp_layer_cost,
    spmm_layer_cost,
    spmm_setup_cost,
)

#: Mirrors tests/plan/test_planner.py — the decisions the paper profile
#: must keep making.
EXPECTED = {
    "cora": "MP",
    "citeseer": "MP",
    "pubmed": "MP",
    "reddit": "SpMM",
    "livejournal": "SpMM",
}


def _dims(spec):
    return [(spec.feature_length, 16), (16, spec.num_classes)]


class TestProfilePersistence:
    def test_round_trip(self, tmp_path):
        profile = CostProfile.paper().with_overrides(
            name="host-fit", source="calibrated", host="testhost",
            gather_unit=0.123, fit=(("cells", 4.0),))
        path = tmp_path / "profile.json"
        profile.save(path)
        loaded = CostProfile.load(path)
        assert loaded == profile
        assert loaded.gather_unit == 0.123
        assert loaded.fit == (("cells", 4.0),)
        assert loaded.source == "calibrated"

    def test_version_mismatch_refused(self, tmp_path):
        import json
        payload = CostProfile.paper().to_dict()
        payload["schema"] = 99
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CalibrationError, match="schema"):
            CostProfile.load(path)

    def test_unknown_field_refused(self, tmp_path):
        import json
        payload = CostProfile.paper().to_dict()
        payload["profile"]["warp_tax"] = 1.0
        path = tmp_path / "unknown.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CalibrationError):
            CostProfile.load(path)

    def test_missing_field_refused(self, tmp_path):
        import json
        payload = CostProfile.paper().to_dict()
        del payload["profile"]["gather_unit"]
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CalibrationError):
            CostProfile.load(path)

    def test_invalid_constant_refused(self):
        with pytest.raises(CalibrationError):
            CostProfile.paper().with_overrides(gather_unit=-1.0)

    def test_missing_file_refused(self, tmp_path):
        with pytest.raises(CalibrationError):
            CostProfile.load(tmp_path / "nope.json")


class TestResolution:
    def test_paper_selector(self):
        assert resolve_cost_profile("paper") == CostProfile.paper()

    def test_default_without_host_file_is_paper(self):
        assert resolve_cost_profile(None) == CostProfile.paper()
        assert resolve_cost_profile("default") == CostProfile.paper()

    def test_explicit_path(self, tmp_path):
        profile = CostProfile.paper().with_overrides(name="explicit")
        path = tmp_path / "p.json"
        profile.save(path)
        assert resolve_cost_profile(str(path)).name == "explicit"

    def test_env_var_path(self, tmp_path, monkeypatch):
        profile = CostProfile.paper().with_overrides(name="from-env")
        path = tmp_path / "env.json"
        profile.save(path)
        monkeypatch.setenv("GSUITE_COST_PROFILE", str(path))
        assert resolve_cost_profile(None).name == "from-env"
        # An explicit path still beats the environment.
        other = tmp_path / "other.json"
        CostProfile.paper().with_overrides(name="explicit").save(other)
        assert resolve_cost_profile(str(other)).name == "explicit"
        # And "paper" ignores the environment entirely.
        assert resolve_cost_profile("paper").name == "paper"

    def test_host_default_file(self):
        path = default_profile_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        CostProfile.paper().with_overrides(name="host-default").save(path)
        assert resolve_cost_profile(None).name == "host-default"
        assert resolve_cost_profile("paper").name == "paper"


class TestPaperParity:
    """``profile=None`` must be bit-identical to an explicit paper()."""

    PAPER = CostProfile.paper()

    @pytest.mark.parametrize("dataset", sorted(EXPECTED))
    def test_gate_decisions_identical(self, dataset):
        spec = get_spec(dataset)
        stats = GraphStats.from_spec(spec)
        dims = _dims(spec)
        assert choose_formats(dims, stats) == \
            choose_formats(dims, stats, profile=self.PAPER)
        assert choose_fusion(dims, stats) == \
            choose_fusion(dims, stats, profile=self.PAPER)
        assert choose_shards(dims, stats) == \
            choose_shards(dims, stats, profile=self.PAPER)
        assert choose_batching(8, dims, stats) == \
            choose_batching(8, dims, stats, profile=self.PAPER)
        assert explain_choice(dims, stats) == \
            explain_choice(dims, stats, profile=self.PAPER)

    @pytest.mark.parametrize("dataset", sorted(EXPECTED))
    def test_costs_identical(self, dataset):
        stats = GraphStats.from_spec(get_spec(dataset))
        for width in (4, 64, 1433):
            assert mp_layer_cost(stats, width) == \
                mp_layer_cost(stats, width, profile=self.PAPER)
            assert spmm_layer_cost(stats, width) == \
                spmm_layer_cost(stats, width, profile=self.PAPER)
            assert fusion_gain(stats, width) == \
                fusion_gain(stats, width, profile=self.PAPER)
        assert spmm_setup_cost(stats) == \
            spmm_setup_cost(stats, profile=self.PAPER)

    @pytest.mark.parametrize("dataset,expected", sorted(EXPECTED.items()))
    def test_paper_decisions_pinned(self, dataset, expected):
        # The acceptance decisions themselves, under the default profile.
        spec = get_spec(dataset)
        formats = choose_formats(_dims(spec), GraphStats.from_spec(spec))
        assert formats == (expected, expected)

    def test_perturbed_profile_flips_a_decision(self):
        # The profile parameter is live: pricing scatter traffic three
        # orders of magnitude higher must push a citation graph to SpMM.
        spec = get_spec("cora")
        stats = GraphStats.from_spec(spec)
        expensive_mp = self.PAPER.with_overrides(
            name="perturbed", scatter_unit=self.PAPER.scatter_unit * 1e3)
        assert choose_formats(_dims(spec), stats) == ("MP", "MP")
        assert set(choose_formats(_dims(spec), stats,
                                  profile=expensive_mp)) == {"SpMM"}


#: Tiny cells: seconds of fit, yet every regressor still varies.
TINY_CELLS = (
    MicroCell(num_nodes=400, avg_degree=2, feature_width=4,
              degree_exponent=3.0),
    MicroCell(num_nodes=400, avg_degree=8, feature_width=16,
              degree_exponent=2.2),
    MicroCell(num_nodes=300, avg_degree=4, feature_width=8,
              degree_exponent=2.5),
)


class TestCalibration:
    def test_fit_produces_valid_profile(self):
        profile = fit_profile(cells=TINY_CELLS)
        assert profile.source == "calibrated"
        assert profile.gpu == "V100-GPGPUSim"
        for unit in (profile.gather_unit, profile.scatter_unit,
                     profile.spmm_unit, profile.spgemm_unit):
            assert math.isfinite(unit) and unit > 0
        diagnostics = dict(profile.fit)
        assert diagnostics["cells"] == len(TINY_CELLS)
        # Every constant documents whether it was fitted or fell back.
        assert "fallback_gather_unit" in diagnostics
        # The shard-dispatch probes fit the setup constant for real now
        # and record what they measured.
        assert diagnostics["fallback_shard_setup_instructions"] == 0.0
        assert diagnostics["shard_overhead_cycles"] > 0
        assert "fallback_shard_skew_threshold" in diagnostics
        assert diagnostics["shard_skew_win_skewed"] > 1.0

    def test_fit_round_trips_and_resolves(self, tmp_path):
        profile = fit_profile(cells=TINY_CELLS)
        path = tmp_path / "fitted.json"
        profile.save(path)
        assert resolve_cost_profile(str(path)) == profile

    def test_fit_is_deterministic(self):
        first = fit_profile(cells=TINY_CELLS)
        second = fit_profile(cells=TINY_CELLS)
        # Identical constants and diagnostics; only the timestamp moves.
        assert first.with_overrides(created="") == \
            second.with_overrides(created="")
        assert first.fit == second.fit

    def test_micro_cells_profiles(self):
        ci, full = micro_cells("ci"), micro_cells("full")
        assert len(ci) >= 8                      # enough lstsq samples
        assert set(ci) <= set(full)
        # The sweep must vary each regressor the fits depend on.
        assert len({c.avg_degree for c in ci}) >= 2
        assert len({c.feature_width for c in ci}) >= 2
        assert len({c.degree_exponent for c in ci}) >= 2

    def test_host_budgets_shape(self):
        budgets = host_budgets()
        assert set(budgets) == {"llc_bytes", "memory_bytes"}
        for value in budgets.values():
            assert value is None or value > 0


class TestCheckGate:
    def test_replay_scores_against_measured(self, monkeypatch):
        from repro.plan import calibrate
        monkeypatch.setattr(calibrate, "CHECK_MODELS", ("gcn",))
        monkeypatch.setattr(calibrate, "CHECK_DATASETS", ("cora",))
        cells = check_decisions(CostProfile.paper(), "ci")
        assert len(cells) == 1
        cell = cells[0]
        assert cell.planner_choice == "MP"       # the pinned cora decision
        assert cell.mp_seconds > 0 and cell.spmm_seconds > 0
        assert cell.measured_choice in ("MP", "SpMM", "tie")
        assert isinstance(cell.correct, bool)
