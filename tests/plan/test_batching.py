"""Batched multi-graph plans: one plan, many workloads, bitwise parity.

The batching contract (see :mod:`repro.graph.batch` and
:class:`repro.plan.ir.BatchSegmentMap`): packing a set of graphs into
one block-diagonal workload and executing the single batched plan
yields per-member outputs **bit-for-bit identical** to running every
member's unbatched plan alone — across models, backends, fusion and
sharding — and a single-graph batch is additionally trace-fingerprint
identical to the plain unbatched run.  Batched plans are a distinct
plan-cache flavor (same kind ``"plan"``, batched key), and the planner
(``choose_batching``) packs citation-scale sweeps while declining
Reddit-scale members whose packed message matrices outgrow the
working-set budget.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import compute_key, get_cache
from repro.core.config import SuiteConfig
from repro.core.kernels import record_launches
from repro.core.pipeline import AUTO_BATCH_SWEEP, GNNPipeline
from repro.datasets import load_dataset
from repro.errors import ConfigError, GraphFormatError, PlanError
from repro.frameworks import PipelineSpec, get_backend
from repro.graph import BatchedGraph, Graph
from repro.plan import (
    BatchSegmentMap,
    FusionPolicy,
    GraphStats,
    PlanExecutor,
    ShardingPolicy,
    batch_member_bytes,
    cached_plan,
    choose_batching,
    graph_signature,
)
from strategies import (
    PARITY_SETTINGS,
    batch_member_lists,
    executable_combos,
    shard_counts,
)


@pytest.fixture(scope="module")
def members():
    return [load_dataset("cora", scale=0.15, seed=s) for s in (1, 2, 3)]


@pytest.fixture(scope="module")
def batched(members):
    return BatchedGraph(members)


def _spec(model, compute_model):
    return PipelineSpec(model=model, compute_model=compute_model, seed=5)


def _trace(recorder):
    return [launch.fingerprint() for launch in recorder.launches]


class TestBatchedGraph:
    def test_packing_geometry(self, members, batched):
        assert batched.num_graphs == 3
        assert batched.num_nodes == sum(g.num_nodes for g in members)
        assert batched.num_edges == sum(g.num_edges for g in members)
        assert list(batched.node_offsets) == [
            0, members[0].num_nodes,
            members[0].num_nodes + members[1].num_nodes,
            batched.num_nodes]
        # Member blocks are disjoint: every edge stays inside its block.
        for (lo, hi), (elo, ehi) in zip(
                batched.node_segments(),
                zip(batched.edge_offsets[:-1], batched.edge_offsets[1:])):
            block = batched.edge_index[:, elo:ehi]
            assert block.size == 0 or (block.min() >= lo and block.max() < hi)

    def test_features_stack_in_member_order(self, members, batched):
        for block, member in zip(batched.unpack(batched.features), members):
            assert np.array_equal(block, member.features)

    def test_unpack_rejects_wrong_row_count(self, batched):
        with pytest.raises(GraphFormatError):
            batched.unpack(np.zeros((batched.num_nodes + 1, 2)))

    def test_ragged_feature_widths_rejected(self):
        a = Graph(np.array([[0], [1]]), features=np.zeros((2, 4),
                                                          dtype=np.float32))
        b = Graph(np.array([[0], [1]]), features=np.zeros((2, 5),
                                                          dtype=np.float32))
        with pytest.raises(GraphFormatError, match="ragged feature widths"):
            BatchedGraph([a, b])

    def test_mixed_feature_presence_rejected(self):
        a = Graph(np.array([[0], [1]]), features=np.zeros((2, 4),
                                                          dtype=np.float32))
        b = Graph(np.array([[0], [1]]), num_nodes=2)
        with pytest.raises(GraphFormatError, match="with and without"):
            BatchedGraph([a, b])

    def test_empty_batch_rejected(self):
        with pytest.raises(GraphFormatError, match="at least one"):
            BatchedGraph([])

    def test_edgeless_member_packs(self):
        a = Graph(np.array([[0, 1], [1, 0]]),
                  features=np.ones((2, 3), dtype=np.float32), name="a")
        b = Graph(np.zeros((2, 0), dtype=np.int64),
                  features=np.ones((4, 3), dtype=np.float32),
                  num_nodes=4, name="empty")
        packed = BatchedGraph([a, b])
        assert packed.num_nodes == 6 and packed.num_edges == 2
        assert packed.member_names() == ("a", "empty")


class TestBatchedParity:
    """Property sweep: random power-law member lists, every legal
    backend x model x compute-model combo, fusion x shard count — the
    packed plan's unpacked blocks are bit-for-bit the solo runs.

    One documented carve-out: the adaptive backend prices its
    per-layer formats from the *whole workload's* statistics, so a
    heterogeneous batch can legally pick a different MP/SpMM schedule
    than a member alone would — there the contract weakens to
    numerical equivalence (and bitwise exactly when the format
    decisions agree).  The serving layer therefore never batches
    adaptive traffic (``InferenceRequest.batchable``)."""

    @PARITY_SETTINGS
    @given(members=batch_member_lists(), combo=executable_combos())
    def test_bitwise_member_outputs(self, members, combo):
        backend, model, cm = combo
        spec = _spec(model, cm)
        batched = BatchedGraph(members)
        packed = get_backend(backend).build(spec, batched).run()
        for block, member in zip(batched.unpack(packed), members):
            reference = get_backend(backend).build(spec, member).run()
            if backend == "gsuite-adaptive":
                from repro.frameworks.adaptive import plan_formats
                if plan_formats(spec, batched) != plan_formats(spec, member):
                    assert np.allclose(block, reference, atol=1e-5), \
                        (backend, model, cm)
                    continue
            assert np.array_equal(block, reference), (backend, model, cm)

    @PARITY_SETTINGS
    @given(members=batch_member_lists(), fuse=st.booleans(),
           k=shard_counts(), combo=st.sampled_from(
               (("gsuite", "gin", "MP"), ("gsuite", "gcn", "SpMM"),
                ("dgl", "sage", "SpMM"))))
    def test_composes_with_fusion_and_sharding(self, members, fuse, k,
                                               combo):
        backend, model, cm = combo
        spec = _spec(model, cm)
        batched = BatchedGraph(members)

        def build(graph):
            built = get_backend(backend).build(spec, graph)
            if fuse:
                built.configure_fusion(FusionPolicy(source="forced"))
            if k > 1:
                built.configure_sharding(
                    ShardingPolicy(num_shards=k, use_cache=False))
            return built

        packed = build(batched).run()
        for block, member in zip(batched.unpack(packed), members):
            assert np.array_equal(block, build(member).run()), \
                (backend, model, cm, fuse, k)

    def test_batched_sgemm_launches_are_segment_local(self, batched):
        built = get_backend("gsuite").build(_spec("gcn", "MP"), batched)
        with record_launches() as recorder:
            built.run()
        segmented = [l for l in recorder.launches
                     if l.kernel == "sgemm" and "@graph" in l.tag]
        # Two layers x three members, each launch sized to its member.
        assert len(segmented) == 2 * batched.num_graphs
        assert {l.tag.partition("@")[2] for l in segmented} == {
            f"graph{i + 1}/3" for i in range(3)}


class TestSingleGraphBatch:
    def test_outputs_and_trace_fingerprints_match_unbatched(self, members):
        spec = _spec("gin", "MP")
        member = members[0]
        solo = BatchedGraph([member])

        def run(graph):
            built = get_backend("gsuite").build(spec, graph)
            with record_launches() as recorder:
                out = built.run()
            return out, _trace(recorder)

        out_plain, trace_plain = run(member)
        out_solo, trace_solo = run(solo)
        assert np.array_equal(out_plain, out_solo)
        assert trace_plain == trace_solo


class TestEdgeCases:
    def test_edgeless_member_in_batch(self):
        rng = np.random.default_rng(0)
        a = Graph(np.array([[0, 1, 2], [1, 2, 0]]),
                  features=rng.standard_normal((3, 6)).astype(np.float32),
                  name="a")
        empty = Graph(np.zeros((2, 0), dtype=np.int64),
                      features=rng.standard_normal((4, 6)).astype(np.float32),
                      num_nodes=4, name="empty")
        packed = BatchedGraph([a, empty, a.copy()])
        spec = _spec("gcn", "MP")
        blocks = packed.unpack(get_backend("gsuite").build(spec,
                                                           packed).run())
        for block, member in zip(blocks, packed.members):
            reference = get_backend("gsuite").build(spec, member).run()
            assert np.array_equal(block, reference)

    def test_batched_plan_rejects_mismatched_graph(self, members, batched):
        built = get_backend("gsuite").build(_spec("gcn", "MP"), batched)
        x = members[0].features
        with pytest.raises(PlanError, match="packs"):
            PlanExecutor().run(built.plan, members[0], {"X": x})

    def test_batched_plan_rejects_repacked_boundaries(self):
        # Same node total, different member boundaries: segmenting the
        # dense transforms at the plan's offsets would silently break
        # member parity, so binding must refuse.
        rng = np.random.default_rng(7)

        def member(nodes, name):
            edge_index = np.vstack([np.arange(nodes - 1),
                                    np.arange(1, nodes)]).astype(np.int64)
            features = rng.standard_normal((nodes, 6)).astype(np.float32)
            return Graph(edge_index, features=features, name=name)

        small, big = member(5, "small"), member(9, "big")
        packed = BatchedGraph([small, big])
        repacked = BatchedGraph([big, small])
        assert repacked.num_nodes == packed.num_nodes
        assert tuple(repacked.node_offsets) != tuple(packed.node_offsets)
        built = get_backend("gsuite").build(_spec("gcn", "MP"), packed)
        with pytest.raises(PlanError, match="member boundaries"):
            PlanExecutor().run(built.plan, repacked,
                               {"X": repacked.features})
        # A plain graph of coincidentally matching size must refuse
        # too (graph-derived segmentation would silently run packed).
        flat = Graph(packed.edge_index, features=packed.features,
                     num_nodes=packed.num_nodes, name="flat")
        with pytest.raises(PlanError, match="matching BatchedGraph"):
            PlanExecutor().run(built.plan, flat, {"X": flat.features})
        # ...and the converse: a packed workload refuses an unstamped
        # plan (it would run dense transforms packed, breaking parity).
        unstamped = built.plan.with_batch(None)
        with pytest.raises(PlanError, match="batch-stamped"):
            PlanExecutor().run(unstamped, packed, {"X": packed.features})

    def test_segment_map_validates_offsets(self):
        with pytest.raises(PlanError):
            BatchSegmentMap(node_offsets=(5, 10), edge_offsets=(0, 4))
        with pytest.raises(PlanError):
            BatchSegmentMap(node_offsets=(0, 10), edge_offsets=(0, 4, 8))
        with pytest.raises(PlanError, match="non-decreasing"):
            BatchSegmentMap(node_offsets=(0, 5, 3), edge_offsets=(0, 2, 4))
        with pytest.raises(PlanError, match="non-decreasing"):
            BatchSegmentMap(node_offsets=(0, 3, 5), edge_offsets=(4, 2, 1))


class TestCacheFlavor:
    def test_graph_signature_carries_batch_geometry(self, members, batched):
        plain = graph_signature(members[0])
        packed = graph_signature(batched)
        assert "batch" not in plain
        assert [m["num_nodes"] for m in packed["batch"]] == [
            g.num_nodes for g in members]

    def test_batched_and_unbatched_keys_are_distinct(self, members, batched):
        spec = _spec("gcn", "MP")
        keys = {
            compute_key("plan", {"flavor": "native", "graph":
                                 graph_signature(graph)})
            for graph in (members[0], batched, BatchedGraph([members[0]]))
        }
        assert len(keys) == 3
        # And the lowered plans themselves can never collide either.
        plain = get_backend("gsuite").build(spec, members[0]).plan
        packed = get_backend("gsuite").build(spec, batched).plan
        assert plain.fingerprint() != packed.fingerprint()
        assert plain.batch is None
        assert packed.batch.num_graphs == 3

    def test_warm_rerun_reuses_the_batched_entry(self, members, batched):
        spec = _spec("gcn", "MP")
        cache = get_cache()

        def build():
            return get_backend("gsuite").build(spec, batched).plan

        first = build()
        hits_before = cache.stats.hits
        second = build()
        assert cache.stats.hits > hits_before
        assert first.fingerprint() == second.fingerprint()
        assert second.batch == BatchSegmentMap.from_graph(batched)

    def test_cached_plan_stamps_map_on_unstamped_entries(self, members,
                                                         batched):
        # Simulate an entry written without a segment map (a by-hand
        # put): cached_plan must stamp the map on the way out.
        from dataclasses import asdict
        spec = _spec("gcn", "MP")
        plain = get_backend("gsuite").build(spec, members[0]).plan
        key = compute_key("plan", {
            "flavor": "native-test", "spec": asdict(spec),
            "graph": graph_signature(batched), "extra": {},
        })
        get_cache().put("plan", key, plain)

        def never_built():  # the hit path must not rebuild
            raise AssertionError("cache entry was ignored")

        plan = cached_plan("native-test", spec, batched, never_built)
        assert plan.batch == BatchSegmentMap.from_graph(batched)
        assert plan.ops == plain.ops


class TestChooseBatching:
    def _stats(self, nodes, edges, width):
        return GraphStats(num_nodes=nodes, num_edges=edges,
                          feature_width=width,
                          avg_degree=edges / max(1, nodes),
                          density=0.001, degree_skew=10.0)

    def test_citation_scale_packs_the_whole_sweep(self):
        # GCN aggregates transform-first (output width), so a cora
        # member's message matrix is kilobytes — the sweep packs whole.
        from repro.core.models import get_model_class
        stats = self._stats(2708, 10556, 1433)
        dims = [(1433, 16), (16, 7)]
        hook = get_model_class("gcn").aggregation_width
        assert choose_batching(8, dims, stats, width_hook=hook) == 8

    def test_reddit_scale_declines(self):
        stats = self._stats(232_965, 114_615_892, 602)
        dims = [(602, 16), (16, 41)]
        assert choose_batching(8, dims, stats) == 1

    def test_budget_caps_the_batch_mid_sweep(self):
        # ~14 MB per member: a 64 MB budget fits 4, not 8.
        stats = self._stats(3327, 947, 3703)
        dims = [(3703, 16), (16, 6)]
        chosen = choose_batching(8, dims, stats)
        assert 1 < chosen < 8
        assert chosen * batch_member_bytes(dims, stats) <= 64 * 1024 * 1024

    def test_all_spmm_plans_batch_by_footprint(self):
        # SpMM layers exert no message-matrix pressure, but member
        # state (features + structure) still multiplies by B: small
        # all-SpMM members pack, Table-IV-size ones stay per-graph.
        from repro.plan import batch_member_footprint
        small = self._stats(3327, 4732, 3703)
        dims = [(3703, 16), (16, 6)]
        assert batch_member_bytes(dims, small,
                                  formats=["SpMM", "SpMM"]) == 0.0
        assert choose_batching(8, dims, small,
                               formats=["SpMM", "SpMM"]) == 8
        reddit = self._stats(232_965, 114_615_892, 602)
        assert batch_member_footprint(reddit) > 1024 ** 3
        assert choose_batching(8, [(602, 16), (16, 41)], reddit,
                               formats=["SpMM", "SpMM"]) == 1

    def test_single_graph_and_cap(self):
        stats = self._stats(100, 200, 8)
        dims = [(8, 4)]
        assert choose_batching(1, dims, stats) == 1
        assert choose_batching(500, dims, stats) == 64  # _MAX_AUTO_BATCH
        assert choose_batching(500, dims, stats, max_batch=3) == 3


class TestPipelineAndConfig:
    def test_config_validates_batch(self):
        assert SuiteConfig(batch=0).batch == 0
        with pytest.raises(ConfigError):
            SuiteConfig(batch=-1)

    def test_config_accepts_cli_spellings(self, tmp_path):
        # Config files may use the vocabulary --batch teaches.
        assert SuiteConfig(batch="auto").batch == 0
        assert SuiteConfig(batch="off").batch == 1
        assert SuiteConfig(batch="4").batch == 4
        with pytest.raises(ConfigError, match="batch"):
            SuiteConfig(batch="many")
        # JSON numbers may arrive as floats; integral ones coerce,
        # non-integral ones refuse with ConfigError (not TypeError).
        assert SuiteConfig(batch=4.0).batch == 4
        with pytest.raises(ConfigError, match="batch"):
            SuiteConfig(batch=4.5)
        # JSON booleans refuse: false would silently mean 0 = auto.
        with pytest.raises(ConfigError, match="batch"):
            SuiteConfig(batch=False)
        with pytest.raises(ConfigError, match="batch"):
            SuiteConfig(batch=True)
        path = tmp_path / "cfg.json"
        path.write_text('{"batch": "auto"}')
        assert SuiteConfig.from_file(path).batch == 0

    def test_forced_batch_packs_seed_variants(self):
        pipeline = GNNPipeline(SuiteConfig(dataset="cora", model="gcn",
                                           scale=0.15, batch=3, seed=2))
        assert pipeline.batch_decision() == (3, "forced")
        graph = pipeline.graph
        assert isinstance(graph, BatchedGraph) and graph.num_graphs == 3
        # Members are the seed sweep, so they genuinely differ.
        assert not np.array_equal(graph.members[0].edge_index,
                                  graph.members[1].edge_index)
        outputs = pipeline.run_batch()
        assert len(outputs) == 3
        for out, member in zip(outputs, graph.members):
            solo = GNNPipeline(SuiteConfig(dataset="cora", model="gcn",
                                           scale=0.15, seed=2),
                               graph=member)
            assert np.array_equal(out, solo.run())

    def test_auto_packs_citation_and_declines_reddit(self):
        cora = GNNPipeline(SuiteConfig(dataset="cora", model="gcn",
                                       scale=0.15, batch=0))
        assert cora.batch_decision() == (AUTO_BATCH_SWEEP, "planner")
        reddit = GNNPipeline(SuiteConfig(dataset="reddit", model="sage",
                                         scale=0.05, batch=0))
        assert reddit.batch_decision() == (1, "planner")

    def test_auto_prices_adaptive_with_planned_formats(self):
        # The adaptive backend flips SAGE/Reddit to all-SpMM layers,
        # which exert no message-matrix pressure — the auto estimate
        # must price those formats, not the config's MP default.
        adaptive = GNNPipeline(SuiteConfig(dataset="reddit", model="sage",
                                           scale=0.05, batch=0,
                                           framework="gsuite-adaptive"))
        assert adaptive.batch_decision() == (AUTO_BATCH_SWEEP, "planner")
        # ...but the resident-footprint budget still refuses to pack
        # full Table-IV-size members, all-SpMM or not.
        full = GNNPipeline(SuiteConfig(dataset="reddit", model="sage",
                                       batch=0,
                                       framework="gsuite-adaptive"))
        assert full.batch_decision() == (1, "planner")

    def test_explicit_graph_wins_over_config(self, members, batched):
        pipeline = GNNPipeline(SuiteConfig(dataset="cora", model="gcn",
                                           batch=5), graph=members[0])
        assert pipeline.batch_decision() == (1, "off")
        assert pipeline.run_batch()[0].shape[0] == members[0].num_nodes
        packed = GNNPipeline(SuiteConfig(dataset="cora", model="gcn"),
                             graph=batched)
        assert packed.batch_decision() == (3, "graph")
        assert len(packed.run_batch()) == 3


class TestCli:
    def test_parse_batch_values(self):
        import argparse
        from repro.cli import _parse_batch
        assert _parse_batch("auto") == 0
        assert _parse_batch("off") == 1
        assert _parse_batch("4") == 4
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_batch("many")

    def test_plan_reports_batching(self, capsys):
        from repro.cli import main
        code = main(["plan", "--model", "gcn", "--dataset", "cora",
                     "--scale", "0.15", "--batch", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "batching: 2 graphs (cora+cora)" in out
        assert "(forced)" in out

    def test_config_file_batch_survives_unset_flags(self, tmp_path,
                                                    capsys):
        # An unset --batch must not clobber the config file's value
        # with the built-in default; an explicit flag still wins.
        from repro.cli import main
        path = tmp_path / "sweep.json"
        SuiteConfig(dataset="cora", scale=0.15, batch=2).save(path)
        assert main(["run", "--config", str(path)]) == 0
        assert capsys.readouterr().out.count("cora: output shape") == 2
        assert main(["run", "--config", str(path), "--batch", "off"]) == 0
        assert "output shape: " in capsys.readouterr().out

    def test_run_reports_members(self, capsys):
        from repro.cli import main
        code = main(["run", "--model", "gcn", "--dataset", "cora",
                     "--scale", "0.15", "--batch", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("cora: output shape") == 2
