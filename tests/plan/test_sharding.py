"""Shard-parity: sharded execution is invisible except for speed.

The sharding contract (see :mod:`repro.plan.sharding`) is bit-for-bit
equality with unsharded execution for outputs *and* the ambient
recorder's launch stream — launch fingerprints included, so sharded and
unsharded runs share simulation/profile cache entries.  These tests pin
that contract for every model x backend x shard count (ragged last
shards and zero-in-edge shards included), through the process pool, and
over randomized adversarial graphs.
"""

import numpy as np
import pytest

from repro.cache import get_cache
from repro.core.kernels import record_launches
from repro.datasets import load_dataset
from repro.errors import BackendError, PlanError
from repro.frameworks import get_backend, PipelineSpec
from repro.graph import Graph
from repro.plan import (
    PlanExecutor,
    ShardingPolicy,
    build_shard_subplan,
    find_shard_groups,
    shard_ranges,
)

#: Backend x (model, compute model) combos whose pipelines execute a
#: plain PlanExecutor and therefore support sharding.  (The PyG-like
#: backend observes every op through its tape and refuses — covered
#: separately below.)
SHARDABLE = {
    "gsuite": (("gcn", "MP"), ("gcn", "SpMM"), ("gin", "MP"),
               ("gin", "SpMM"), ("sage", "MP"), ("gat", "MP")),
    "dgl": (("gcn", "SpMM"), ("gin", "SpMM"), ("sage", "SpMM")),
    "gsuite-adaptive": (("gcn", "MP"), ("gin", "MP"), ("sage", "MP"),
                        ("gat", "MP")),
}

SHARD_COUNTS = (1, 2, 7)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", scale=0.15, seed=1)


def _spec(model, compute_model):
    return PipelineSpec(model=model, compute_model=compute_model, seed=5)


def _trace(recorder):
    return [launch.fingerprint() for launch in recorder.launches]


def _run_recorded(pipeline):
    with record_launches() as recorder:
        out = pipeline.run()
    return out, _trace(recorder)


def _combos():
    return [(backend, model, cm, k)
            for backend, combos in SHARDABLE.items()
            for model, cm in combos
            for k in SHARD_COUNTS]


class TestShardRanges:
    def test_even_partition(self):
        assert shard_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_ragged_last_shards(self):
        ranges = shard_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        assert ranges[0][1] - ranges[0][0] > ranges[-1][1] - ranges[-1][0]

    def test_clamps_to_node_count(self):
        assert shard_ranges(3, 7) == [(0, 1), (1, 2), (2, 3)]
        assert shard_ranges(5, 1) == [(0, 5)]
        assert shard_ranges(0, 4) == [(0, 0)]

    def test_partition_covers_everything(self):
        for nodes, k in ((17, 4), (100, 7), (5, 5)):
            ranges = shard_ranges(nodes, k)
            assert ranges[0][0] == 0 and ranges[-1][1] == nodes
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo


class TestShardGroups:
    def test_mp_plan_groups_gather_scatter_pairs(self, graph):
        built = get_backend("gsuite").build(_spec("gcn", "MP"), graph)
        groups = find_shard_groups(built.plan)
        assert [g.kind for g in groups] == ["mp", "mp"]  # one per layer
        for group in groups:
            assert group.gather is not None and group.scatter is not None
            assert group.positions == (group.start, group.start + 1)

    def test_spmm_plan_groups_every_spmm(self, graph):
        built = get_backend("gsuite").build(_spec("gin", "SpMM"), graph)
        groups = find_shard_groups(built.plan)
        assert [g.kind for g in groups] == ["spmm", "spmm"]

    def test_subplan_is_valid_and_annotated(self, graph):
        built = get_backend("gsuite").build(_spec("sage", "MP"), graph)
        group = find_shard_groups(built.plan)[0]
        subplan = build_shard_subplan(group, 3, 9, 1, 4)
        subplan.validate()
        assert subplan.flavor == "shard"
        assert subplan.meta["lo"] == 3 and subplan.meta["hi"] == 9
        assert "@shard2/4" in subplan.ops[0].tag


class TestShardParity:
    """model x backend x K in {1, 2, 7}: outputs and merged traces are
    bit-for-bit identical to the unsharded plan."""

    @pytest.mark.parametrize("backend,model,cm,k", _combos())
    def test_bitwise_output_and_trace(self, graph, backend, model, cm, k):
        spec = _spec(model, cm)
        reference, ref_trace = _run_recorded(
            get_backend(backend).build(spec, graph))
        sharded_pipeline = get_backend(backend).build(spec, graph) \
            .configure_sharding(ShardingPolicy(num_shards=k))
        sharded, shard_trace = _run_recorded(sharded_pipeline)
        assert sharded.dtype == reference.dtype
        assert np.array_equal(sharded, reference)     # bit-for-bit
        assert shard_trace == ref_trace               # fingerprints equal

    def test_pooled_dispatch_is_identical(self, graph):
        """jobs > 1 routes shards through real worker processes."""
        spec = _spec("gcn", "MP")
        reference, ref_trace = _run_recorded(
            get_backend("gsuite").build(spec, graph))
        pooled = get_backend("gsuite").build(spec, graph).configure_sharding(
            ShardingPolicy(num_shards=3, jobs=2))
        out, trace = _run_recorded(pooled)
        assert np.array_equal(out, reference)
        assert trace == ref_trace

    def test_shard_trace_captures_shards_and_merges(self, graph):
        built = get_backend("gsuite").build(_spec("gcn", "MP"), graph) \
            .configure_sharding(ShardingPolicy(num_shards=4))
        with record_launches():   # capture follows the ambient recorder
            built.run()
        executor = built._executor
        tags = [launch.tag for launch in executor.shard_trace]
        assert any("@shard1/4" in tag for tag in tags)
        assert any(tag.endswith("@merge") for tag in tags)
        assert len(executor.shard_report) == 2        # one per MP layer
        for dispatch in executor.shard_report:
            assert dispatch.num_shards == 4
            assert sum(dispatch.edges_per_shard) > 0

    def test_zero_in_edge_shards(self):
        """Shards whose destination range receives no edges at all."""
        rng = np.random.default_rng(7)
        # 20 nodes; every edge lands in [0, 5) so shards of the upper
        # ranges carry zero in-edges; nodes 10+ are fully isolated.
        src = rng.integers(0, 20, size=60)
        dst = rng.integers(0, 5, size=60)
        graph = Graph(np.vstack([src, dst]), num_nodes=20,
                      features=rng.standard_normal((20, 6)).astype(np.float32),
                      name="zero-shards")
        for model, cm in (("gcn", "MP"), ("gin", "SpMM")):
            spec = PipelineSpec(model=model, compute_model=cm,
                                out_features=3, seed=2)
            reference, ref_trace = _run_recorded(
                get_backend("gsuite").build(spec, graph))
            sharded, trace = _run_recorded(
                get_backend("gsuite").build(spec, graph)
                .configure_sharding(ShardingPolicy(num_shards=7)))
            assert np.array_equal(sharded, reference)
            assert trace == ref_trace

    def test_edgeless_graph(self):
        """A graph with no edges at all shard-executes identically."""
        rng = np.random.default_rng(3)
        graph = Graph(np.zeros((2, 0), dtype=np.int64), num_nodes=9,
                      features=rng.standard_normal((9, 4)).astype(np.float32),
                      name="edgeless")
        spec = PipelineSpec(model="gin", compute_model="MP",
                            out_features=2, seed=0)
        reference, ref_trace = _run_recorded(
            get_backend("gsuite").build(spec, graph))
        sharded, trace = _run_recorded(
            get_backend("gsuite").build(spec, graph)
            .configure_sharding(ShardingPolicy(num_shards=2)))
        assert np.array_equal(sharded, reference)
        assert trace == ref_trace

    def test_pyg_refuses_sharding(self, graph):
        built = get_backend("pyg").build(_spec("gcn", "MP"), graph)
        with pytest.raises(BackendError):
            built.configure_sharding(ShardingPolicy(num_shards=2))

    def test_observer_and_sharding_are_exclusive(self):
        with pytest.raises(PlanError):
            PlanExecutor(on_op=lambda op, result: None,
                         sharding=ShardingPolicy(num_shards=2))


class TestCrossDatasetParity:
    """All four models on every benchmark dataset (scaled): sharded
    execution through the adaptive backend — whatever mix of MP and
    SpMM layers the planner picks — stays bit-for-bit identical."""

    SCALES = {"cora": 0.15, "citeseer": 0.15, "pubmed": 0.05,
              "reddit": 0.002, "livejournal": 0.0005}

    @pytest.mark.parametrize("dataset", sorted(SCALES))
    def test_every_model_on_dataset(self, dataset):
        graph = load_dataset(dataset, scale=self.SCALES[dataset], seed=0)
        for model in ("gcn", "gin", "sage", "gat"):
            spec = PipelineSpec(model=model, out_features=4, seed=3)
            reference, ref_trace = _run_recorded(
                get_backend("gsuite-adaptive").build(spec, graph))
            sharded, trace = _run_recorded(
                get_backend("gsuite-adaptive").build(spec, graph)
                .configure_sharding(ShardingPolicy(num_shards=3)))
            assert np.array_equal(sharded, reference), \
                f"{model} on {dataset}"
            assert trace == ref_trace, f"{model} on {dataset}"


class TestRandomizedParity:
    """Property-style parity over seeded adversarial graphs: duplicate
    edges, isolated nodes, empty rows, ragged shard counts.  The
    harness is fully deterministic (one seeded generator, no
    wall-clock)."""

    MODELS = (("gcn", "MP"), ("gcn", "SpMM"), ("gin", "MP"),
              ("gin", "SpMM"), ("sage", "MP"), ("gat", "MP"))

    def _random_graph(self, rng, case):
        num_nodes = int(rng.integers(4, 40))
        # Leave a tail of isolated nodes; allow empty edge sets.
        reachable = max(1, int(rng.integers(1, num_nodes + 1)))
        num_edges = int(rng.integers(0, 4 * num_nodes))
        src = rng.integers(0, reachable, size=num_edges)
        dst = rng.integers(0, reachable, size=num_edges)
        if num_edges > 2:  # force duplicate edges
            src[1], dst[1] = src[0], dst[0]
        features = rng.standard_normal(
            (num_nodes, int(rng.integers(1, 12)))).astype(np.float32)
        return Graph(np.vstack([src, dst]), num_nodes=num_nodes,
                     features=features, name=f"random-{case}")

    def test_random_graphs_shard_identically(self):
        rng = np.random.default_rng(20260730)
        for case in range(12):
            graph = self._random_graph(rng, case)
            model, cm = self.MODELS[case % len(self.MODELS)]
            spec = PipelineSpec(model=model, compute_model=cm,
                                out_features=int(rng.integers(2, 6)),
                                hidden=int(rng.integers(2, 9)),
                                seed=int(rng.integers(0, 100)))
            num_shards = int(rng.integers(2, graph.num_nodes + 3))
            reference, ref_trace = _run_recorded(
                get_backend("gsuite").build(spec, graph))
            sharded, trace = _run_recorded(
                get_backend("gsuite").build(spec, graph)
                .configure_sharding(ShardingPolicy(num_shards=num_shards)))
            assert np.array_equal(sharded, reference), \
                f"case {case}: {model}/{cm} K={num_shards}"
            assert trace == ref_trace, \
                f"case {case}: {model}/{cm} K={num_shards}"


class TestShardCache:
    """Per-shard results flow through the persistent cache (kind
    "shard"): hits on an identical rerun, misses across shard counts."""

    def _run(self, graph, k):
        spec = _spec("gcn", "MP")
        built = get_backend("gsuite").build(spec, graph).configure_sharding(
            ShardingPolicy(num_shards=k, use_cache=True))
        out = built.run()
        return out, built._executor.shard_report

    def test_rerun_hits_across_shard_counts(self, graph):
        cache = get_cache()
        out_first, _ = self._run(graph, 4)
        stored = cache.stats.stores
        assert stored > 0
        before = cache.stats.to_dict()
        out_second, report = self._run(graph, 4)
        after = cache.stats.to_dict()
        # Every shard task of the rerun hit (2 MP layers x 4 shards).
        assert after["hits"] - before["hits"] >= 8
        assert after["stores"] == before["stores"]
        assert sum(d.cache_hits for d in report) == 8
        assert np.array_equal(out_first, out_second)

    def test_different_shard_count_misses(self, graph):
        cache = get_cache()
        self._run(graph, 4)
        before = cache.stats.to_dict()
        out, report = self._run(graph, 3)
        after = cache.stats.to_dict()
        assert after["stores"] > before["stores"]      # new K = new entries
        assert sum(d.cache_hits for d in report) == 0

    def test_policy_can_opt_out(self, graph):
        cache = get_cache()
        spec = _spec("gcn", "MP")
        built = get_backend("gsuite").build(spec, graph).configure_sharding(
            ShardingPolicy(num_shards=4, use_cache=False))
        built.run()
        assert not (cache.root / "shard").exists()

    def test_measure_bypasses_shard_cache(self, graph):
        """Timed repeats must execute kernels, never read shard entries."""
        from repro.core.config import SuiteConfig
        from repro.core.pipeline import GNNPipeline
        pipeline = GNNPipeline(SuiteConfig(dataset="cora", shards=3),
                               graph=graph)
        pipeline.measure(repeats=2)
        assert not (get_cache().root / "shard").exists()

    def test_cache_info_reports_shard_kind(self, graph, capsys):
        from repro.cli import main
        self._run(graph, 2)
        assert main(["cache", "info"]) == 0
        captured = capsys.readouterr().out
        assert "shard" in captured
