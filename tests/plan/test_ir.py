"""Tests for the execution-plan IR containers and builder."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.plan import ExecutionPlan, PlanBuilder, ValueRef


def _tiny_plan(bias_value=1.0):
    b = PlanBuilder(model="gcn", flavor="native")
    x = b.input("X", fmt="dense")
    w = b.constant(np.eye(3, dtype=np.float32), name="W")
    bias = b.constant(np.full(3, bias_value, dtype=np.float32), name="b")
    h = b.sgemm(x, w, bias=bias, tag="t")
    out = b.activation(h, "relu")
    return b.build(out, layer_formats=("MP",))


class TestValueRef:
    def test_unknown_format_rejected(self):
        with pytest.raises(PlanError):
            ValueRef(0, "sparse-ish")

    def test_repr_carries_name(self):
        assert "X" in repr(ValueRef(0, "dense", "X"))


class TestBuilder:
    def test_builds_valid_plan(self):
        plan = _tiny_plan()
        assert isinstance(plan, ExecutionPlan)
        assert plan.op_counts() == {"sgemm": 1, "activation": 1}
        assert plan.layer_formats == ("MP",)
        assert len(plan.inputs) == 1 and plan.inputs[0].name == "X"

    def test_duplicate_input_rejected(self):
        b = PlanBuilder(model="gcn", flavor="native")
        b.input("X")
        with pytest.raises(PlanError):
            b.input("X")

    def test_unknown_elementwise_kind_rejected(self):
        b = PlanBuilder(model="gcn", flavor="native")
        x = b.input("X")
        y = b.constant(np.zeros(2, dtype=np.float32))
        with pytest.raises(PlanError):
            b.elementwise("mystery", x, y)

    def test_validate_rejects_undefined_operand(self):
        plan = _tiny_plan()
        rogue = ValueRef(999, "dense", "rogue")
        broken = ExecutionPlan(
            model=plan.model, flavor=plan.flavor, ops=plan.ops,
            inputs=plan.inputs, output=rogue, constants=plan.constants)
        with pytest.raises(PlanError):
            broken.validate()

    def test_describe_row_per_op(self):
        plan = _tiny_plan()
        rows = plan.describe()
        assert len(rows) == len(plan.ops)
        assert any("sgemm" in row[1] for row in rows)


class TestFingerprint:
    def test_stable_for_identical_plans(self):
        assert _tiny_plan().fingerprint() == _tiny_plan().fingerprint()

    def test_sensitive_to_constants(self):
        assert _tiny_plan(1.0).fingerprint() != _tiny_plan(2.0).fingerprint()

    def test_sensitive_to_structure(self):
        b = PlanBuilder(model="gcn", flavor="native")
        x = b.input("X", fmt="dense")
        w = b.constant(np.eye(3, dtype=np.float32), name="W")
        bias = b.constant(np.ones(3, dtype=np.float32), name="b")
        h = b.sgemm(x, w, bias=bias, tag="t")
        plan = b.build(h, layer_formats=("MP",))   # no activation
        assert plan.fingerprint() != _tiny_plan().fingerprint()
