"""Plan-vs-legacy parity: the refactor's contract.

Every backend now lowers to the shared ExecutionPlan IR and executes it
through the PlanExecutor.  These tests pin the outputs **bit-for-bit**
against the legacy direct-call paths, which survive as reference
implementations: ``GNNModel.forward`` (native), the conv modules'
``forward`` methods (PyG-like), and the ``DGLGraphLike`` + kernel loop
re-created here exactly as the seed backend ran it (DGL-like).  The
recorded kernel-launch sequences are pinned too, so simulation and
profiling consume identical traces.
"""

import numpy as np
import pytest

from repro.core.kernels import record_launches, sgemm, spmm
from repro.core.models import build_model
from repro.core.models.activations import get_activation, relu
from repro.datasets import load_dataset
from repro.frameworks import DGLGraphLike, get_backend, PipelineSpec
from repro.frameworks.pyg_like import _validate_edge_index

MODELS_BY_BACKEND = {
    "gsuite": (("gcn", "MP"), ("gcn", "SpMM"), ("gin", "MP"),
               ("gin", "SpMM"), ("sage", "MP"), ("gat", "MP")),
    "pyg": (("gcn", "MP"), ("gin", "MP"), ("sage", "MP")),
    "dgl": (("gcn", "SpMM"), ("gin", "SpMM"), ("sage", "SpMM")),
}


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", scale=0.15, seed=1)


def _spec(model, compute_model):
    return PipelineSpec(model=model, compute_model=compute_model, seed=5)


def _legacy_native(spec, graph):
    """The direct kernel-call path: GNNModel.forward."""
    model = build_model(
        spec.model, in_features=graph.num_features, hidden=spec.hidden,
        out_features=spec.out_features, num_layers=spec.num_layers,
        compute_model=spec.compute_model, activation=spec.activation,
        seed=spec.seed,
    )
    return model.forward(graph)


def _legacy_pyg(spec, graph):
    """The seed PyG-like run loop over the (still present) conv modules."""
    pipeline = get_backend("pyg").build(spec, graph)
    x = np.array(graph.features, dtype=np.float32, copy=True)
    edge_index = _validate_edge_index(graph.edge_index, graph.num_nodes)
    activation = get_activation(spec.activation)
    for layer, conv in enumerate(pipeline._convs):
        x = conv.forward(x, edge_index, graph.num_nodes,
                         tag=f"{spec.model}-l{layer}")
        if layer < len(pipeline._convs) - 1:
            x = activation(x)
    return x


def _legacy_dgl(spec, graph):
    """The seed DGL-like run loop: per-run graph object + SpMM convs."""
    reference = build_model(
        spec.model, in_features=graph.num_features, hidden=spec.hidden,
        out_features=spec.out_features, num_layers=spec.num_layers,
        compute_model="MP", activation=spec.activation, seed=spec.seed,
    )
    x = np.asarray(graph.features, dtype=np.float32)
    dgl_graph = DGLGraphLike(graph)
    activation = get_activation(spec.activation)
    for layer in range(spec.num_layers):
        params = reference.weights[layer]
        tag = f"{spec.model}-l{layer}"
        if spec.model == "gcn":
            propagated = spmm(dgl_graph.normalized(), x, tag=tag)
            x = sgemm(propagated, params["W"], bias=params["b"], tag=tag)
        elif spec.model == "gin":
            agg = spmm(dgl_graph.plain(), x, tag=tag)
            combined = (1.0 + reference.epsilon) * x + agg
            hidden = relu(sgemm(combined, params["W1"], bias=params["b1"],
                                tag=tag))
            x = sgemm(hidden, params["W2"], bias=params["b2"], tag=tag)
        else:
            mean_neigh = spmm(dgl_graph.mean_adjacency(), x, tag=tag)
            x = (sgemm(x, params["W1"], tag=tag)
                 + sgemm(mean_neigh, params["W2"], bias=params["b"],
                         tag=tag))
        if layer < spec.num_layers - 1:
            x = activation(x)
    return x


_LEGACY = {"gsuite": _legacy_native, "pyg": _legacy_pyg, "dgl": _legacy_dgl}


def _combos():
    return [(backend, model, cm)
            for backend, combos in MODELS_BY_BACKEND.items()
            for model, cm in combos]


class TestBitwiseParity:
    @pytest.mark.parametrize("backend,model,cm", _combos())
    def test_plan_output_equals_legacy(self, graph, backend, model, cm):
        spec = _spec(model, cm)
        legacy = _LEGACY[backend](spec, graph)
        planned = get_backend(backend).build(spec, graph).run()
        assert planned.dtype == legacy.dtype
        assert np.array_equal(planned, legacy)   # bit-for-bit

    @pytest.mark.parametrize("backend,model,cm", _combos())
    def test_recorded_trace_identical(self, graph, backend, model, cm):
        """Simulation/profiling consume the exact same launch stream."""
        spec = _spec(model, cm)
        with record_launches() as legacy_rec:
            _LEGACY[backend](spec, graph)
        pipeline = get_backend(backend).build(spec, graph)
        with record_launches() as plan_rec:
            pipeline.run()
        legacy_trace = [(l.kernel, l.tag, l.threads, l.flops,
                         l.bytes_read, l.bytes_written)
                        for l in legacy_rec.launches]
        plan_trace = [(l.kernel, l.tag, l.threads, l.flops,
                       l.bytes_read, l.bytes_written)
                      for l in plan_rec.launches]
        assert plan_trace == legacy_trace

    @pytest.mark.parametrize("model", ["gcn", "gin", "sage"])
    def test_pyg_tape_matches_legacy_conv_path(self, graph, model):
        """The autograd-style tape records the same node sequence the
        direct conv loop produced (message nodes included)."""
        spec = _spec(model, "MP")
        planned = get_backend("pyg").build(spec, graph)
        planned.run()
        reference = get_backend("pyg").build(spec, graph)
        x = np.array(graph.features, dtype=np.float32, copy=True)
        edge_index = _validate_edge_index(graph.edge_index, graph.num_nodes)
        activation = get_activation(spec.activation)
        for layer, conv in enumerate(reference._convs):
            x = conv.forward(x, edge_index, graph.num_nodes,
                             tag=f"{model}-l{layer}")
            if layer < len(reference._convs) - 1:
                x = activation(x)
        assert ([n["op"] for n in planned._tape.nodes]
                == [n["op"] for n in reference._tape.nodes])

    def test_cached_plan_reexecutes_bitwise(self, graph):
        """A plan deserialised from the persistent cache is equivalent."""
        spec = _spec("gcn", "MP")
        first = get_backend("gsuite").build(spec, graph)
        second = get_backend("gsuite").build(spec, graph)   # cache hit
        assert second.plan.fingerprint() == first.plan.fingerprint()
        assert np.array_equal(first.run(), second.run())

    def test_adaptive_matches_native_function(self, graph):
        """The planner changes the *execution*, never the function."""
        for model in ("gcn", "gin", "sage", "gat"):
            spec = _spec(model, "MP")
            reference = get_backend("gsuite").build(spec, graph).run()
            adaptive = get_backend("gsuite-adaptive").build(spec, graph).run()
            assert np.allclose(adaptive, reference, atol=1e-3)


class TestExtensionModelFallback:
    """Extension models without lowering hooks keep working unlowered."""

    def _register(self):
        from repro.core.kernels import sgemm
        from repro.core.models import GNNModel, register_model
        from repro.graph import normalized_adjacency

        class DirectOnly(GNNModel):
            name = "direct-only"
            supported_compute_models = ("MP",)

            def prepare(self, graph):
                return {"propagation": normalized_adjacency(graph)}

            def layer_forward(self, layer, x, graph, state):
                params = self.weights[layer]
                mixed = state["propagation"].matmul(x)
                return sgemm(mixed, params["W"], bias=params["b"],
                             tag=f"direct-l{layer}")

        register_model("direct-only", DirectOnly, overwrite=True)

    def test_native_and_adaptive_fall_back_to_forward(self, graph):
        self._register()
        for backend in ("gsuite", "gsuite-adaptive"):
            built = get_backend(backend).build(_spec("direct-only", "MP"),
                                               graph)
            assert built.plan is None
            out = built.run()
            assert out.shape == (graph.num_nodes, 7)
            assert np.all(np.isfinite(out))
