"""Tests for the shared bench machinery (memoisation, aggregation)."""

import pytest

from repro.bench.common import (
    DATASET_ORDER,
    MP_MODELS,
    SPMM_MODELS,
    clear_bench_cache,
    merge_sim_by_kernel,
    pipeline_for,
    profile_results,
    recorded_launches,
    sim_results,
)
from repro.bench.profiles import BenchProfile

TINY = BenchProfile(
    name="tiny",
    dataset_scales={"cora": 0.05},
    sample_cap=5_000,
    max_cycles=2_000,
    repeats=1,
)


@pytest.fixture(autouse=True)
def fresh():
    clear_bench_cache()
    yield
    clear_bench_cache()


class TestGrids:
    def test_paper_grids(self):
        assert MP_MODELS == ("gcn", "gin", "sage")
        assert SPMM_MODELS == ("gcn", "gin")
        assert [short for _, short in DATASET_ORDER] == \
            ["CR", "CS", "PB", "RD", "LJ"]


class TestPipelineFor:
    def test_applies_profile(self):
        pipe = pipeline_for("gcn", "cora", "MP", TINY)
        assert pipe.config.scale == 0.05
        assert pipe.config.sample_cap == 5_000

    def test_framework_selection(self):
        pipe = pipeline_for("gcn", "cora", "MP", TINY, framework="pyg")
        assert pipe.figure_label() == "PyG"


class TestMemoisation:
    def test_launches_cached(self):
        a = recorded_launches("gcn", "cora", "MP", TINY)
        b = recorded_launches("gcn", "cora", "MP", TINY)
        assert a is b

    def test_sims_and_profiles_cached(self):
        assert sim_results("gcn", "cora", "MP", TINY) is \
            sim_results("gcn", "cora", "MP", TINY)
        assert profile_results("gcn", "cora", "MP", TINY) is \
            profile_results("gcn", "cora", "MP", TINY)

    def test_cache_key_distinguishes_compute_model(self):
        a = recorded_launches("gcn", "cora", "MP", TINY)
        b = recorded_launches("gcn", "cora", "SpMM", TINY)
        assert a is not b

    def test_clear_cache(self):
        a = recorded_launches("gcn", "cora", "MP", TINY)
        clear_bench_cache()
        assert recorded_launches("gcn", "cora", "MP", TINY) is not a


class TestMergeSimByKernel:
    def test_merges_by_short_form(self):
        results = sim_results("gcn", "cora", "MP", TINY)
        merged = merge_sim_by_kernel(results)
        assert set(merged) == {"sg", "is", "sc"}
        for summary in merged.values():
            assert summary["launches"] == 2  # two layers
            assert sum(summary["stalls"].values()) == pytest.approx(1.0)
            assert sum(summary["occupancy"].values()) == pytest.approx(1.0)
            assert 0.0 <= summary["l1_hit_rate"] <= 1.0

    def test_empty_input(self):
        assert merge_sim_by_kernel([]) == {}
