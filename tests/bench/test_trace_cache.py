"""Tests for the persistent trace cache (repro.cache) and its wiring."""

import os
import subprocess
import sys

import pytest

from repro import cache as trace_cache
from repro.bench.common import (
    clear_bench_cache,
    measured_times,
    profile_results,
    recorded_launches,
    sim_results,
)
from repro.bench.profiles import BenchProfile
from repro.cache import TraceCache, compute_key, get_cache

TINY = BenchProfile(
    name="tiny",
    dataset_scales={"cora": 0.05},
    sample_cap=5_000,
    max_cycles=2_000,
    repeats=1,
)


@pytest.fixture(autouse=True)
def fresh_memos():
    clear_bench_cache()
    yield
    clear_bench_cache()


class TestComputeKey:
    def test_deterministic_and_order_independent(self):
        a = compute_key("record", {"x": 1, "y": [1, 2]})
        b = compute_key("record", {"y": [1, 2], "x": 1})
        assert a == b

    def test_kind_and_payload_distinguish(self):
        payload = {"config": {"seed": 0}}
        assert compute_key("record", payload) != compute_key("sim", payload)
        changed = {"config": {"seed": 1}}
        assert compute_key("record", payload) != compute_key("record", changed)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            compute_key("tables", {})

    def test_stable_across_processes(self):
        """The same inputs hash identically in a fresh interpreter."""
        payload_code = (
            "from repro.cache import compute_key;"
            "print(compute_key('record', {'x': 1, 'y': ['a', 'b']}))"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(trace_cache.__file__), "..")
        env["PYTHONPATH"] = os.path.abspath(src)
        child = subprocess.run(
            [sys.executable, "-c", payload_code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert child.stdout.strip() == compute_key(
            "record", {"x": 1, "y": ["a", "b"]})


class TestTraceCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = TraceCache(tmp_path / "c")
        key = compute_key("sim", {"n": 1})
        assert cache.get("sim", key) is None
        cache.put("sim", key, {"cycles": 42}, meta={"kernel": "sgemm"})
        assert cache.get("sim", key) == {"cycles": 42}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_disabled_cache_bypasses_everything(self, tmp_path):
        cache = TraceCache(tmp_path / "c", enabled=False)
        key = compute_key("sim", {"n": 1})
        cache.put("sim", key, "value")
        assert cache.get("sim", key) is None
        assert not (tmp_path / "c").exists()
        assert cache.stats.to_dict() == {"hits": 0, "misses": 0,
                                         "stores": 0, "corrupt": 0}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path / "c")
        key = compute_key("sim", {"n": 1})
        cache.put("sim", key, "value")
        (tmp_path / "c" / "sim" / f"{key}.pkl").write_bytes(b"garbage")
        assert cache.get("sim", key) is None

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        """A writer killed mid-store leaves <key>.tmp.<pid>; clear removes it."""
        cache = TraceCache(tmp_path / "c")
        cache.put("sim", compute_key("sim", {"n": 1}), "a")
        orphan = tmp_path / "c" / "sim" / "deadbeef.tmp.1234"
        orphan.write_bytes(b"partial")
        assert cache.clear() == 2
        assert not orphan.exists()

    def test_clear_and_describe(self, tmp_path):
        cache = TraceCache(tmp_path / "c")
        cache.put("sim", compute_key("sim", {"n": 1}), "a")
        cache.put("record", compute_key("record", {"n": 2}), "b")
        info = cache.describe()
        assert info["entries"] == 2
        assert set(info["by_kind"]) == {"sim", "record"}
        assert cache.clear() == 2
        assert cache.describe()["entries"] == 0


class TestBenchWiring:
    """The bench layers persist and reload through the process cache."""

    def test_recorded_launches_roundtrip(self):
        first = recorded_launches("gcn", "cora", "MP", TINY)
        stores = get_cache().stats.stores
        assert stores >= 1
        clear_bench_cache()
        second = recorded_launches("gcn", "cora", "MP", TINY)
        assert get_cache().stats.hits >= 1
        assert second is not first  # reloaded from disk, not the memo
        assert [l.fingerprint() for l in second] == \
            [l.fingerprint() for l in first]

    def test_sim_results_cached_per_launch(self):
        first = sim_results("gcn", "cora", "MP", TINY)
        clear_bench_cache()
        hits_before = get_cache().stats.hits
        second = sim_results("gcn", "cora", "MP", TINY)
        assert get_cache().stats.hits - hits_before >= len(first)
        assert [r.cycles for r in second] == [r.cycles for r in first]
        assert [r.stall_distribution for r in second] == \
            [r.stall_distribution for r in first]

    def test_profile_and_timing_roundtrip(self):
        prof = profile_results("gcn", "cora", "MP", TINY)
        times = measured_times("gcn", "cora", "MP", TINY)
        clear_bench_cache()
        assert [r.l1_hit_rate for r in
                profile_results("gcn", "cora", "MP", TINY)] == \
            [r.l1_hit_rate for r in prof]
        # Cached timings reload exactly: warm tables are byte-identical.
        assert measured_times("gcn", "cora", "MP", TINY) == times

    def test_profile_change_invalidates(self):
        recorded_launches("gcn", "cora", "MP", TINY)
        clear_bench_cache()
        other = BenchProfile(name="tiny", dataset_scales={"cora": 0.05},
                             sample_cap=6_000, max_cycles=2_000, repeats=1)
        misses_before = get_cache().stats.misses
        recorded_launches("gcn", "cora", "MP", other)
        assert get_cache().stats.misses > misses_before

    def test_no_cache_bypass(self):
        get_cache().enabled = False
        recorded_launches("gcn", "cora", "MP", TINY)
        assert get_cache().stats.to_dict() == {
            "hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
        root = get_cache().root
        assert not any(root.rglob("*.pkl")) if root.exists() else True
