"""Tests for the parallel benchmark engine and the harness CLI wiring."""

import io

import pytest

from repro.bench import engine
from repro.bench.common import WorkCell, clear_bench_cache
from repro.bench.harness import build_parser, run_all
from repro.bench.profiles import PROFILES, BenchProfile, active_profile
from repro.cli import build_parser as cli_parser
from repro.errors import ConfigError

# Small enough for CI, large enough that every experiment has real work.
TINY = BenchProfile(
    name="tiny",
    dataset_scales={
        "cora": 0.05,
        "citeseer": 0.05,
        "pubmed": 0.01,
        "reddit": 0.0005,
        "livejournal": 0.0001,
    },
    sample_cap=5_000,
    max_cycles=2_000,
    repeats=1,
)


@pytest.fixture(autouse=True)
def fresh_memos():
    clear_bench_cache()
    yield
    clear_bench_cache()


class TestCollectCells:
    def test_all_kinds_present_and_deduplicated(self):
        cells = engine.collect_cells(TINY)
        assert len(cells) == len(set(cells))
        kinds = {c.kind for c in cells}
        assert kinds == {"record", "sim", "profile", "timing"}

    def test_shared_cells_collected_once(self):
        """fig6/fig7/fig8 all need the MP sims; they must appear once."""
        cells = engine.collect_cells(TINY)
        mp_sims = [c for c in cells
                   if c.kind == "sim" and c.compute_model == "MP"]
        assert len(mp_sims) == len(set(mp_sims))
        assert WorkCell("sim", "gcn", "cora", "MP") in mp_sims

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigError):
            engine.run_suite(TINY, jobs=0, stream=io.StringIO())


def _table_files(base):
    return sorted(p.name for p in base.glob("*.txt"))


def _square(value):
    return value * value


class TestWorkerPool:
    """The pool facade extracted from the engine (shared with the
    sharded plan executor)."""

    def test_serial_fast_path_runs_in_process(self):
        from repro.bench.pool import WorkerPool
        with WorkerPool(1) as pool:
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert pool._pool is None          # no processes were forked

    def test_single_task_never_pools(self):
        from repro.bench.pool import WorkerPool
        with WorkerPool(4) as pool:
            assert pool.map(_square, [5]) == [25]
            assert pool._pool is None

    def test_parallel_map_preserves_order_and_reuses_pool(self):
        from repro.bench.pool import WorkerPool
        with WorkerPool(2) as pool:
            assert pool.map(_square, list(range(6))) == [
                v * v for v in range(6)]
            first = pool._pool
            assert first is not None
            pool.map(_square, [7, 8])
            assert pool._pool is first         # lazily created once
        assert pool._pool is None              # context exit closed it

    def test_rejects_bad_jobs(self):
        from repro.bench.pool import WorkerPool
        with pytest.raises(ConfigError):
            WorkerPool(0)


class TestParallelParity:
    """A parallel warm run reproduces the serial run byte for byte."""

    def test_parallel_tables_identical_to_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"

        report = engine.run_suite(TINY, jobs=1, stream=io.StringIO(),
                                  results_base=str(serial_dir))
        assert report.cache_stats.stores > 0
        assert len(report.cell_timings) == len(engine.collect_cells(TINY))

        clear_bench_cache()
        warm = engine.run_suite(TINY, jobs=2, stream=io.StringIO(),
                                results_base=str(parallel_dir))
        assert warm.jobs == 2
        assert warm.cache_stats.hits > 0
        assert warm.cache_stats.misses == 0

        names = _table_files(serial_dir)
        assert names == _table_files(parallel_dir)
        assert set(names) == {f"{name}.txt" for name in engine.EXPERIMENTS}
        for name in names:
            assert (serial_dir / name).read_bytes() == \
                (parallel_dir / name).read_bytes(), name

    def test_warm_run_faster_than_cold(self, tmp_path):
        from repro.cache import get_cache
        cache = get_cache()
        stats_before, enabled_before = cache.stats, cache.enabled
        cold = engine.run_suite(TINY, jobs=1, stream=io.StringIO(),
                                results_base=str(tmp_path / "a"))
        clear_bench_cache()
        warm = engine.run_suite(TINY, jobs=1, stream=io.StringIO(),
                                results_base=str(tmp_path / "b"))
        assert warm.total_seconds < cold.total_seconds
        assert all(t.cached for t in warm.cell_timings)
        # run_suite restores the shared cache's state for embedders.
        assert cache.stats is stats_before
        assert cache.enabled is enabled_before

    def test_run_all_returns_checks(self, tmp_path):
        checks = run_all(TINY, stream=io.StringIO(), jobs=2)
        assert set(checks) == set(engine.EXPERIMENTS)
        for per_experiment in checks.values():
            assert per_experiment  # every experiment asserts something


class TestEnvKillSwitch:
    def test_gsuite_cache_0_beats_programmatic_opt_in(self, monkeypatch):
        """GSUITE_CACHE=0 must disable caching even when the engine asks
        for use_cache=True (the env var is the documented kill switch)."""
        from repro import cache as trace_cache
        monkeypatch.setenv("GSUITE_CACHE", "0")
        trace_cache.reset_cache()
        cell = WorkCell("record", "gcn", "cora", "MP")
        _, value, _, delta = engine._execute_cell((cell, TINY, True))
        assert value  # the work still happened
        assert delta.to_dict() == {"hits": 0, "misses": 0, "stores": 0,
                                   "corrupt": 0}
        root = trace_cache.get_cache().root
        assert not root.exists() or not any(root.rglob("*.pkl"))


class TestProfileSelection:
    def test_explicit_name_overrides_env(self, monkeypatch):
        monkeypatch.setenv("GSUITE_PROFILE", "ci")
        assert active_profile("full").name == "full"

    def test_env_still_default(self, monkeypatch):
        monkeypatch.setenv("GSUITE_PROFILE", "full")
        assert active_profile().name == "full"
        assert active_profile(None).name == "full"

    def test_unknown_explicit_name_rejected(self):
        with pytest.raises(ConfigError):
            active_profile("huge")


class TestCliWiring:
    def test_bench_flags(self):
        args = build_parser().parse_args(
            ["--jobs", "4", "--profile", "full", "--no-cache"])
        assert args.jobs == 4
        assert args.profile == "full"
        assert args.no_cache and not args.clear_cache

    def test_gsuite_bench_flags(self):
        args = cli_parser().parse_args(["bench", "-j", "2", "--clear-cache"])
        assert args.command == "bench"
        assert args.jobs == 2 and args.clear_cache

    def test_gsuite_cache_subcommand(self):
        assert cli_parser().parse_args(["cache"]).action == "info"
        assert cli_parser().parse_args(["cache", "clear"]).action == "clear"

    def test_bench_profile_choices_match_registry(self):
        with pytest.raises(SystemExit):
            cli_parser().parse_args(["bench", "--profile", "huge"])
        assert set(PROFILES) >= {"ci", "full"}

    def test_cache_info_command(self, capsys):
        from repro.cli import main
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "cache root" in out
        assert main(["cache", "clear"]) == 0
