"""Integration tests for the experiment drivers on a tiny profile.

A micro profile (heavily scaled datasets, low simulation budgets) keeps
each driver's full pipeline — record, simulate, profile, aggregate,
render — under test without benchmark-scale runtimes.  Qualitative
checks are only asserted where they are meaningful at micro scale
(structure, normalisation, registry content); the shape claims are
asserted by the real benchmark suite.
"""

import pytest

from repro.bench.common import clear_bench_cache
from repro.bench.experiments import (
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table2,
    table4,
)
from repro.bench.profiles import BenchProfile

MICRO = BenchProfile(
    name="micro",
    dataset_scales={
        "cora": 0.1,
        "citeseer": 0.1,
        "pubmed": 0.02,
        "reddit": 0.001,
        "livejournal": 0.0002,
    },
    sample_cap=20_000,
    max_cycles=4_000,
    repeats=1,
)


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_bench_cache()
    yield
    clear_bench_cache()


class TestTableDrivers:
    def test_table2_rows_and_checks(self):
        rows = table2.rows(MICRO)
        assert len(rows) == 5
        assert all(table2.checks(rows).values())
        assert "Table II" in table2.render(MICRO)

    def test_table4_rows_and_checks(self):
        rows = table4.rows(MICRO)
        assert len(rows) == 5
        checks = table4.checks(rows)
        assert checks["full_specs_match_paper"]
        assert checks["generators_met_scaled_spec"]


class TestFig3:
    def test_grid_covers_all_variants(self):
        rows = fig3.rows(MICRO)
        labels = {r[0] for r in rows}
        assert labels == {"PyG", "DGL", "gSuite-MP", "gSuite-SpMM",
                          "gSuite-Adaptive"}
        # SAG has no SpMM implementation.
        assert not any(r[0] == "gSuite-SpMM" and r[1] == "SAGE" for r in rows)
        assert all(r[3] > 0 and r[4] > 0 for r in rows)

    def test_render(self):
        assert "Fig. 3" in fig3.render(MICRO)


class TestFig4:
    def test_distributions_normalised(self):
        rows = fig4.rows(MICRO)
        checks = fig4.checks(rows)
        assert checks["distributions_normalised"]
        assert checks["spmm_variants_spend_time_in_sp"]


class TestFig5:
    def test_panels_and_invariants(self):
        rows = fig5.rows(MICRO)
        checks = fig5.checks(rows)
        assert checks["gather_scatter_int_dominated"]
        assert checks["sgemm_fp32_dominated"]
        # All four panels present.
        assert {r[0] for r in rows} == {"gSuite-MP", "gSuite-SpMM"}


class TestFig6:
    def test_rows_are_distributions(self):
        rows = fig6.rows(MICRO)
        assert rows
        for r in rows:
            assert abs(sum(r[4:]) - 1.0) < 1e-6
        checks = fig6.checks(rows)
        assert checks["average_memory_share_substantial"]


class TestFig7:
    def test_rows_are_distributions(self):
        rows = fig7.rows(MICRO)
        assert rows
        checks = fig7.checks(rows)
        assert checks["distributions_normalised"]


class TestFig8:
    def test_rates_bounded(self):
        rows = fig8.rows(MICRO)
        checks = fig8.checks(rows)
        assert checks["all_rates_in_unit_interval"]
        assert checks["l1_agrees_more_than_l2"]


class TestFig9:
    def test_utils_bounded(self):
        rows = fig9.rows(MICRO)
        checks = fig9.checks(rows)
        assert checks["all_utils_in_unit_interval"]


class TestHarness:
    def test_run_all_writes_tables(self, tmp_path, monkeypatch):
        import io

        import repro.bench.harness as harness
        import repro.bench.tables as tables

        # Redirect results into a temp dir.
        monkeypatch.setattr(
            tables, "results_dir",
            lambda base=None: tables.Path(tmp_path))
        stream = io.StringIO()
        checks = harness.run_all(MICRO, stream=stream)
        assert set(checks) == set(harness.EXPERIMENTS)
        written = {p.stem for p in tmp_path.glob("*.txt")}
        assert written == set(harness.EXPERIMENTS)
        assert "Fig. 6" in stream.getvalue()
