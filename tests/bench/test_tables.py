"""Tests for table formatting and result persistence."""

from repro.bench.tables import format_table, results_dir, write_result


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(("A", "Long Header"), [(1, 2.0), (333, 4.5)],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "Long Header" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # Columns align: every data line has the header's separator offset.
        assert lines[3].startswith("1  ")

    def test_float_formatting(self):
        out = format_table(("x",), [(0.123456,)])
        assert "0.1235" in out

    def test_empty_rows(self):
        out = format_table(("x", "y"), [])
        assert "x" in out and out.endswith("\n")

    def test_wide_cells_stretch_columns(self):
        out = format_table(("h",), [("wider-than-header",)])
        header_line, sep, row = out.splitlines()
        assert len(sep) >= len("wider-than-header")


class TestPersistence:
    def test_write_result(self, tmp_path):
        path = write_result("unit", "hello\n", base=str(tmp_path))
        assert path.read_text() == "hello\n"
        assert path.name == "unit.txt"

    def test_results_dir_created(self, tmp_path):
        target = tmp_path / "nested"
        out = results_dir(str(target))
        assert out.is_dir()
