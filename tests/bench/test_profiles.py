"""Tests for benchmark sizing profiles."""

import pytest

from repro.bench.profiles import PROFILES, active_profile
from repro.errors import ConfigError


class TestProfiles:
    def test_ci_and_full_present(self):
        assert {"ci", "full"} == set(PROFILES)

    def test_ci_scales_large_datasets(self):
        ci = PROFILES["ci"]
        assert ci.scale_of("cora") == 1.0
        assert ci.scale_of("reddit") < 1.0
        assert ci.scale_of("livejournal") < 1.0

    def test_full_is_unscaled(self):
        full = PROFILES["full"]
        for name in ("cora", "citeseer", "pubmed", "reddit", "livejournal"):
            assert full.scale_of(name) == 1.0

    def test_default_profile_is_ci(self, monkeypatch):
        monkeypatch.delenv("GSUITE_PROFILE", raising=False)
        assert active_profile().name == "ci"

    def test_env_selects_profile(self, monkeypatch):
        monkeypatch.setenv("GSUITE_PROFILE", "FULL")
        assert active_profile().name == "full"

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("GSUITE_PROFILE", "huge")
        with pytest.raises(ConfigError):
            active_profile()

    def test_unknown_dataset_defaults_to_one(self):
        assert PROFILES["ci"].scale_of("wiki-cs") == 1.0
