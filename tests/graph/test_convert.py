"""Tests for the format conversion entry point."""

import numpy as np
import pytest

from repro.errors import ConversionError
from repro.graph import (
    FORMATS,
    Graph,
    convert,
    coo_to_edge_index,
    csr_to_edge_index,
    dense_to_edge_index,
    edge_index_to_coo,
    edge_index_to_csr,
)
from repro.graph.formats import COOMatrix, DenseMatrix


@pytest.fixture
def sample_coo():
    rng = np.random.default_rng(0)
    return COOMatrix(rng.integers(0, 8, 20), rng.integers(0, 8, 20), shape=(8, 8))


class TestConvert:
    @pytest.mark.parametrize("target", FORMATS)
    def test_all_targets_reachable(self, sample_coo, target):
        out = convert(sample_coo, target)
        assert np.allclose(out.to_dense().array if target != "dense" else out.array,
                           sample_coo.to_dense().array)

    def test_identity_conversion_returns_same_object(self, sample_coo):
        assert convert(sample_coo, "coo") is sample_coo

    def test_case_insensitive(self, sample_coo):
        assert convert(sample_coo, "CSR").nnz == sample_coo.nnz

    def test_unknown_format_rejected(self, sample_coo):
        with pytest.raises(ConversionError):
            convert(sample_coo, "ellpack")

    def test_non_matrix_rejected(self):
        with pytest.raises(ConversionError):
            convert(np.zeros((2, 2)), "csr")


class TestEdgeIndexBridges:
    def test_coo_roundtrip(self):
        edge_index = np.array([[0, 1, 2], [1, 2, 0]])
        coo = edge_index_to_coo(edge_index, 3)
        back = coo_to_edge_index(coo)
        assert np.array_equal(np.sort(back, axis=1), np.sort(edge_index, axis=1))

    def test_coo_orientation_is_dst_row(self):
        coo = edge_index_to_coo(np.array([[0], [2]]), 3)
        assert coo.row[0] == 2 and coo.col[0] == 0

    def test_csr_roundtrip_preserves_adjacency(self):
        rng = np.random.default_rng(1)
        edge_index = rng.integers(0, 10, size=(2, 30))
        csr = edge_index_to_csr(edge_index, 10)
        back = csr_to_edge_index(csr)
        orig = edge_index_to_coo(edge_index, 10).to_dense().array
        rebuilt = edge_index_to_coo(back, 10).to_dense().array
        assert np.allclose(orig, rebuilt)

    def test_dense_to_edge_index(self):
        dense = DenseMatrix([[0.0, 0.0], [1.0, 0.0]])
        edge_index = dense_to_edge_index(dense)
        # entry A[1, 0] means edge 0 -> 1.
        assert edge_index.shape == (2, 1)
        assert edge_index[0, 0] == 0 and edge_index[1, 0] == 1

    def test_bad_edge_index_shape(self):
        with pytest.raises(ConversionError):
            edge_index_to_coo(np.zeros((3, 2), dtype=np.int64), 4)

    def test_graph_exports_match_bridges(self):
        rng = np.random.default_rng(2)
        edge_index = rng.integers(0, 6, size=(2, 15))
        g = Graph(edge_index, num_nodes=6)
        via_bridge = edge_index_to_csr(edge_index, 6).to_dense().array
        via_graph = g.adjacency_csr().to_dense().array
        assert np.allclose(via_bridge, via_graph)
