"""Unit tests for the Graph value object."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import Graph


@pytest.fixture
def triangle():
    """Directed triangle 0->1->2->0 with 2-dim features."""
    edge_index = np.array([[0, 1, 2], [1, 2, 0]])
    features = np.arange(6, dtype=np.float32).reshape(3, 2)
    return Graph(edge_index, features=features, name="triangle")


class TestConstruction:
    def test_basic_properties(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert triangle.num_features == 2
        assert triangle.name == "triangle"

    def test_rejects_bad_edge_index_shape(self):
        with pytest.raises(GraphFormatError):
            Graph(np.zeros((3, 4), dtype=np.int64))

    def test_rejects_float_edge_index(self):
        with pytest.raises(GraphFormatError):
            Graph(np.zeros((2, 3)))

    def test_rejects_negative_node_ids(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([[0, -1], [1, 0]]))

    def test_rejects_num_nodes_smaller_than_ids(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([[0, 5], [1, 0]]), num_nodes=3)

    def test_rejects_feature_row_mismatch(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([[0], [1]]), features=np.zeros((5, 2)), num_nodes=2)

    def test_rejects_1d_features(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([[0], [1]]), features=np.zeros(2))

    def test_rejects_bad_edge_weight(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([[0], [1]]), edge_weight=np.ones(3))

    def test_num_nodes_inferred_from_features(self):
        g = Graph(np.array([[0], [1]]), features=np.zeros((7, 1)))
        assert g.num_nodes == 7

    def test_num_nodes_inferred_from_edges(self):
        g = Graph(np.array([[0, 3], [1, 2]]))
        assert g.num_nodes == 4

    def test_isolated_nodes_allowed(self):
        g = Graph(np.array([[0], [1]]), num_nodes=10)
        assert g.num_nodes == 10
        assert g.in_degrees()[9] == 0

    def test_empty_graph(self):
        g = Graph(np.zeros((2, 0), dtype=np.int64), num_nodes=4)
        assert g.num_edges == 0
        assert list(g.degrees()) == [0, 0, 0, 0]


class TestDerivedStructure:
    def test_degrees(self, triangle):
        assert list(triangle.in_degrees()) == [1, 1, 1]
        assert list(triangle.out_degrees()) == [1, 1, 1]
        assert list(triangle.degrees()) == [2, 2, 2]

    def test_self_loop_detection(self, triangle):
        assert not triangle.has_self_loops()
        loopy = Graph(np.array([[0, 1], [0, 2]]), num_nodes=3)
        assert loopy.has_self_loops()

    def test_edge_values_default_to_ones(self, triangle):
        assert np.all(triangle.edge_values() == 1.0)

    def test_edge_values_use_weights(self):
        g = Graph(np.array([[0], [1]]), edge_weight=np.array([2.5]), num_nodes=2)
        assert g.edge_values()[0] == pytest.approx(2.5)


class TestFormatExports:
    def test_adjacency_orientation(self, triangle):
        dense = triangle.adjacency_dense().array
        # A[dst, src] = 1 for edge src->dst.
        assert dense[1, 0] == 1.0
        assert dense[0, 1] == 0.0

    def test_all_exports_agree(self, triangle):
        dense = triangle.adjacency_dense().array
        assert np.allclose(triangle.adjacency_coo().to_dense().array, dense)
        assert np.allclose(triangle.adjacency_csr().to_dense().array, dense)
        assert np.allclose(triangle.adjacency_csc().to_dense().array, dense)

    def test_feature_matrix(self, triangle):
        assert np.allclose(triangle.feature_matrix().array, triangle.features)

    def test_feature_matrix_requires_features(self):
        g = Graph(np.array([[0], [1]]))
        with pytest.raises(GraphFormatError):
            g.feature_matrix()

    def test_aggregation_via_adjacency(self, triangle):
        # A @ X sums in-neighbour features: node 1 receives node 0's feature.
        out = triangle.adjacency_csr().matmul(triangle.features)
        assert np.allclose(out[1], triangle.features[0])


class TestTransforms:
    def test_with_features(self, triangle):
        new = triangle.with_features(np.ones((3, 5), dtype=np.float32))
        assert new.num_features == 5
        assert triangle.num_features == 2  # original untouched

    def test_copy_is_deep(self, triangle):
        clone = triangle.copy()
        clone.features[0, 0] = 99.0
        assert triangle.features[0, 0] != 99.0
        clone.edge_index[0, 0] = 2
        assert triangle.edge_index[0, 0] == 0
