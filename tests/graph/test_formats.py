"""Unit tests for the sparse/dense matrix containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph.formats import (
    COOMatrix,
    CSRMatrix,
    DenseMatrix,
    _ragged_arange,
    _segment_sum,
)


def random_coo(rng, rows=12, cols=9, nnz=40):
    return COOMatrix(
        rng.integers(0, rows, nnz),
        rng.integers(0, cols, nnz),
        rng.standard_normal(nnz).astype(np.float32),
        shape=(rows, cols),
    )


class TestCOOMatrix:
    def test_basic_construction(self):
        coo = COOMatrix([0, 1, 2], [1, 2, 0], shape=(3, 3))
        assert coo.shape == (3, 3)
        assert coo.nnz == 3
        assert coo.val.dtype == np.float32
        assert np.all(coo.val == 1.0)

    def test_shape_inference(self):
        coo = COOMatrix([0, 4], [1, 2])
        assert coo.shape == (5, 3)

    def test_empty_matrix(self):
        coo = COOMatrix([], [], shape=(4, 4))
        assert coo.nnz == 0
        assert coo.to_dense().array.sum() == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix([0, 1], [0])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix([0, 5], [0, 0], shape=(3, 3))
        with pytest.raises(GraphFormatError):
            COOMatrix([0, 1], [0, 7], shape=(3, 3))

    def test_non_integer_indices_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix([0.5, 1.0], [0, 1])

    def test_two_dimensional_indices_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix([[0], [1]], [0, 1])

    def test_bad_values_length_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix([0, 1], [0, 1], val=[1.0])

    def test_to_dense_sums_duplicates(self):
        coo = COOMatrix([0, 0], [1, 1], [2.0, 3.0], shape=(2, 2))
        dense = coo.to_dense().array
        assert dense[0, 1] == pytest.approx(5.0)

    def test_transpose(self):
        coo = COOMatrix([0, 1], [2, 0], [1.0, 2.0], shape=(2, 3))
        t = coo.transpose()
        assert t.shape == (3, 2)
        assert np.allclose(t.to_dense().array, coo.to_dense().array.T)

    def test_coalesce_merges_and_sorts(self):
        coo = COOMatrix([1, 0, 1], [0, 0, 0], [1.0, 1.0, 4.0], shape=(2, 2))
        merged = coo.coalesce()
        assert merged.nnz == 2
        assert np.allclose(merged.to_dense().array, coo.to_dense().array)
        keys = merged.row * 2 + merged.col
        assert np.all(np.diff(keys) > 0)

    def test_coalesce_empty(self):
        coo = COOMatrix([], [], shape=(3, 3))
        assert coo.coalesce().nnz == 0


class TestCSRMatrix:
    def test_roundtrip_through_coo(self):
        rng = np.random.default_rng(1)
        coo = random_coo(rng)
        csr = coo.to_csr()
        assert csr.nnz == coo.nnz
        assert np.allclose(csr.to_dense().array, coo.to_dense().array, atol=1e-6)

    def test_row_lengths_match_degrees(self):
        coo = COOMatrix([0, 0, 2], [0, 1, 2], shape=(3, 3))
        csr = coo.to_csr()
        assert list(csr.row_lengths()) == [2, 0, 1]

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix([1, 2], [0], shape=(1, 1))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix([0, 2, 1], [0, 0], shape=(2, 1))

    def test_indptr_terminal_must_match_indices(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix([0, 3], [0, 1], shape=(1, 2))

    def test_indptr_length_must_match_rows(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix([0, 1], [0], shape=(2, 1))

    def test_column_bounds_checked(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix([0, 1], [5], shape=(1, 3))

    def test_matvec_matches_dense(self):
        rng = np.random.default_rng(2)
        csr = random_coo(rng).to_csr()
        x = rng.standard_normal(csr.shape[1]).astype(np.float32)
        assert np.allclose(csr.matvec(x), csr.to_dense().array @ x, atol=1e-4)

    def test_matvec_dimension_mismatch(self):
        csr = COOMatrix([0], [0], shape=(2, 2)).to_csr()
        with pytest.raises(GraphFormatError):
            csr.matvec(np.ones(5, dtype=np.float32))

    def test_matmul_matches_dense(self):
        rng = np.random.default_rng(3)
        csr = random_coo(rng).to_csr()
        x = rng.standard_normal((csr.shape[1], 7)).astype(np.float32)
        assert np.allclose(csr.matmul(x), csr.to_dense().array @ x, atol=1e-4)

    def test_matmul_rejects_vector(self):
        csr = COOMatrix([0], [0], shape=(2, 2)).to_csr()
        with pytest.raises(GraphFormatError):
            csr.matmul(np.ones(2, dtype=np.float32))

    def test_matmul_handles_empty_rows(self):
        csr = COOMatrix([2], [0], shape=(4, 2)).to_csr()
        x = np.ones((2, 3), dtype=np.float32)
        out = csr.matmul(x)
        assert np.allclose(out[0], 0)
        assert np.allclose(out[2], 1)

    def test_spgemm_matches_dense(self):
        rng = np.random.default_rng(4)
        a = random_coo(rng, rows=10, cols=8, nnz=30).to_csr()
        b = random_coo(rng, rows=8, cols=6, nnz=25).to_csr()
        product = a.spgemm(b)
        expected = a.to_dense().array @ b.to_dense().array
        assert np.allclose(product.to_dense().array, expected, atol=1e-4)

    def test_spgemm_dimension_mismatch(self):
        a = COOMatrix([0], [0], shape=(2, 3)).to_csr()
        b = COOMatrix([0], [0], shape=(2, 2)).to_csr()
        with pytest.raises(GraphFormatError):
            a.spgemm(b)

    def test_spgemm_with_empty_operand(self):
        a = COOMatrix([], [], shape=(3, 3)).to_csr()
        b = COOMatrix([0], [0], shape=(3, 3)).to_csr()
        out = a.spgemm(b)
        assert out.nnz == 0
        assert out.shape == (3, 3)


class TestCSCMatrix:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        coo = random_coo(rng)
        csc = coo.to_csc()
        assert csc.shape == coo.shape
        assert np.allclose(csc.to_dense().array, coo.to_dense().array, atol=1e-6)

    def test_col_lengths(self):
        coo = COOMatrix([0, 1, 2], [1, 1, 0], shape=(3, 2))
        csc = coo.to_csc()
        assert list(csc.col_lengths()) == [1, 2]

    def test_csc_to_csr_roundtrip(self):
        rng = np.random.default_rng(6)
        coo = random_coo(rng)
        back = coo.to_csc().to_csr()
        assert np.allclose(back.to_dense().array, coo.to_dense().array, atol=1e-6)

    def test_matmul_via_interface(self):
        rng = np.random.default_rng(7)
        coo = random_coo(rng)
        x = rng.standard_normal((coo.shape[1], 4)).astype(np.float32)
        assert np.allclose(coo.to_csc().matmul(x), coo.to_dense().array @ x, atol=1e-4)


class TestDenseMatrix:
    def test_requires_2d(self):
        with pytest.raises(GraphFormatError):
            DenseMatrix(np.zeros(3))

    def test_nnz(self):
        dense = DenseMatrix([[0.0, 1.0], [2.0, 0.0]])
        assert dense.nnz == 2

    def test_to_coo_roundtrip(self):
        dense = DenseMatrix([[0.0, 1.5], [2.0, 0.0]])
        assert np.allclose(dense.to_coo().to_dense().array, dense.array)

    def test_matmul(self):
        dense = DenseMatrix([[1.0, 0.0], [0.0, 2.0]])
        x = np.array([[1.0], [3.0]], dtype=np.float32)
        assert np.allclose(dense @ x, [[1.0], [6.0]])

    def test_density_property(self):
        coo = COOMatrix([0], [0], shape=(2, 2))
        assert coo.density == pytest.approx(0.25)

    def test_density_of_empty_shape(self):
        coo = COOMatrix([], [], shape=(0, 0))
        assert coo.density == 0.0


class TestHelpers:
    def test_segment_sum_with_empty_segments(self):
        values = np.array([[1.0], [2.0], [3.0]], dtype=np.float32)
        indptr = np.array([0, 0, 2, 2, 3])
        out = _segment_sum(values, indptr, 4)
        assert np.allclose(out[:, 0], [0.0, 3.0, 0.0, 3.0])

    def test_segment_sum_empty_input(self):
        out = _segment_sum(np.empty((0, 2), dtype=np.float32), np.array([0, 0]), 1)
        assert out.shape == (1, 2)
        assert np.all(out == 0)

    def test_ragged_arange(self):
        out = _ragged_arange(np.array([3, 0, 2]))
        assert list(out) == [0, 1, 2, 0, 1]

    def test_ragged_arange_empty(self):
        assert _ragged_arange(np.array([], dtype=np.int64)).size == 0


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 20),
    st.integers(1, 20),
    st.integers(0, 60),
    st.integers(0, 2**31 - 1),
)
def test_format_conversion_cycle_preserves_matrix(rows, cols, nnz, seed):
    """Property: COO -> CSR -> CSC -> COO preserves the dense matrix."""
    rng = np.random.default_rng(seed)
    coo = COOMatrix(
        rng.integers(0, rows, nnz),
        rng.integers(0, cols, nnz),
        rng.standard_normal(nnz).astype(np.float32),
        shape=(rows, cols),
    )
    cycled = coo.to_csr().to_csc().to_coo()
    assert cycled.shape == coo.shape
    assert np.allclose(cycled.to_dense().array, coo.to_dense().array, atol=1e-4)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 12), st.integers(0, 40), st.integers(0, 2**31 - 1))
def test_spgemm_equals_dense_product(n, nnz, seed):
    """Property: SpGEMM agrees with the dense matrix product."""
    rng = np.random.default_rng(seed)
    a = COOMatrix(
        rng.integers(0, n, nnz), rng.integers(0, n, nnz),
        rng.standard_normal(nnz).astype(np.float32), shape=(n, n),
    ).to_csr()
    product = a.spgemm(a)
    dense = a.to_dense().array
    assert np.allclose(product.to_dense().array, dense @ dense, atol=1e-3)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 15), st.integers(0, 50), st.integers(1, 8),
       st.integers(0, 2**31 - 1))
def test_matmul_matches_dense_product(n, nnz, feats, seed):
    """Property: CSR @ X equals the dense product for random operands."""
    rng = np.random.default_rng(seed)
    csr = COOMatrix(
        rng.integers(0, n, nnz), rng.integers(0, n, nnz), shape=(n, n)
    ).to_csr()
    x = rng.standard_normal((n, feats)).astype(np.float32)
    assert np.allclose(csr.matmul(x), csr.to_dense().array @ x, atol=1e-3)
