"""Unit and property tests for structural graph transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import (
    Graph,
    add_self_loops,
    coalesce_edges,
    gcn_edge_weights,
    normalized_adjacency,
    remove_self_loops,
    subgraph,
    symmetric_normalization,
    to_undirected,
    validate_graph,
)
from repro.graph.formats import COOMatrix


def random_graph(seed, nodes=20, edges=60, feats=4):
    rng = np.random.default_rng(seed)
    edge_index = rng.integers(0, nodes, size=(2, edges))
    features = rng.standard_normal((nodes, feats)).astype(np.float32)
    return Graph(edge_index, features=features, name=f"rand{seed}")


class TestSelfLoops:
    def test_adds_loop_for_every_node(self):
        g = Graph(np.array([[0], [1]]), num_nodes=3)
        looped = add_self_loops(g)
        assert looped.num_edges == 4
        dense = looped.adjacency_dense().array
        assert np.all(np.diag(dense) == 1.0)

    def test_keeps_existing_loops(self):
        g = Graph(np.array([[0, 1], [0, 2]]), num_nodes=3)
        looped = add_self_loops(g)
        # node 0 already had a loop; only nodes 1 and 2 gain one.
        assert looped.num_edges == 4

    def test_preserves_weights(self):
        g = Graph(np.array([[0], [1]]), edge_weight=np.array([3.0]), num_nodes=2)
        looped = add_self_loops(g)
        assert looped.edge_weight is not None
        assert looped.edge_weight[0] == pytest.approx(3.0)
        assert np.all(looped.edge_weight[1:] == 1.0)

    def test_remove_then_add_is_total(self):
        g = Graph(np.array([[0, 1, 1], [0, 1, 2]]), num_nodes=3)
        stripped = remove_self_loops(g)
        assert not stripped.has_self_loops()
        assert stripped.num_edges == 1


class TestCoalesce:
    def test_merges_duplicates(self):
        g = Graph(np.array([[0, 0, 1], [1, 1, 2]]), num_nodes=3)
        merged = coalesce_edges(g)
        assert merged.num_edges == 2
        # Duplicate weight accumulates.
        assert merged.edge_weight is not None
        total = merged.edge_weight[
            (merged.src == 0) & (merged.dst == 1)
        ]
        assert total[0] == pytest.approx(2.0)

    def test_no_duplicates_stays_unweighted(self):
        g = Graph(np.array([[0, 1], [1, 2]]), num_nodes=3)
        merged = coalesce_edges(g)
        assert merged.edge_weight is None
        assert merged.num_edges == 2


class TestUndirected:
    def test_symmetric_result(self):
        g = random_graph(0)
        und = to_undirected(g)
        dense = und.adjacency_dense().array
        assert np.allclose(dense, dense.T)

    def test_unweighted_stays_unweighted(self):
        g = Graph(np.array([[0, 1], [1, 0]]), num_nodes=2)
        und = to_undirected(g)
        assert und.edge_weight is None
        assert np.all(und.adjacency_dense().array <= 1.0)


class TestNormalization:
    def test_requires_square(self):
        rect = COOMatrix([0], [1], shape=(2, 3)).to_csr()
        with pytest.raises(GraphFormatError):
            symmetric_normalization(rect)

    def test_matches_dense_formula(self):
        g = random_graph(1)
        norm = normalized_adjacency(g)
        dense_a = add_self_loops(coalesce_edges(g)).adjacency_dense().array
        deg = dense_a.sum(axis=1)
        inv = np.where(deg > 0, deg ** -0.5, 0.0)
        expected = inv[:, None] * dense_a * inv[None, :]
        assert np.allclose(norm.to_dense().array, expected, atol=1e-5)

    def test_spectral_radius_bounded_for_undirected(self):
        # For an undirected graph, eigenvalues of D^-1/2 (A+I) D^-1/2 lie
        # in [-1, 1]; this is the stability property GCN relies on.
        g = to_undirected(random_graph(2))
        norm = normalized_adjacency(g)
        eigvals = np.linalg.eigvalsh(norm.to_dense().array.astype(np.float64))
        assert eigvals.max() <= 1.0 + 1e-5
        assert eigvals.min() >= -1.0 - 1e-5

    def test_zero_degree_rows_stay_zero(self):
        g = Graph(np.array([[0], [1]]), num_nodes=5)
        norm = symmetric_normalization(g.adjacency_csr())
        dense = norm.to_dense().array
        assert np.all(dense[3] == 0)
        assert np.all(dense[:, 3] == 0)


class TestGCNEdgeWeights:
    def test_matches_spmm_normalisation(self):
        """Per-edge 1/sqrt(du dv) weights assemble the same matrix as
        D^-1/2 (A+I) D^-1/2 — the MP/SpMM equivalence at the heart of
        the paper's two computational models (Eq. 1 vs Eq. 2)."""
        g = coalesce_edges(random_graph(3))
        edge_index, weights = gcn_edge_weights(g)
        assembled = COOMatrix(edge_index[1], edge_index[0], weights,
                              shape=(g.num_nodes, g.num_nodes)).to_dense().array
        expected = normalized_adjacency(g).to_dense().array
        assert np.allclose(assembled, expected, atol=1e-5)

    def test_weight_count_matches_looped_edges(self):
        g = Graph(np.array([[0], [1]]), num_nodes=3)
        edge_index, weights = gcn_edge_weights(g)
        assert edge_index.shape[1] == weights.shape[0] == 4


class TestSubgraph:
    def test_induced_edges_only(self):
        g = Graph(np.array([[0, 1, 2], [1, 2, 0]]), num_nodes=3)
        sub = subgraph(g, [0, 1])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1  # only 0->1 survives

    def test_features_sliced(self):
        g = random_graph(4)
        sub = subgraph(g, [3, 5, 7])
        assert np.allclose(sub.features[0], g.features[3])
        assert np.allclose(sub.features[2], g.features[7])

    def test_out_of_range_rejected(self):
        g = random_graph(5)
        with pytest.raises(GraphFormatError):
            subgraph(g, [0, 99])

    def test_empty_selection(self):
        g = random_graph(6)
        sub = subgraph(g, [])
        assert sub.num_nodes == 0
        assert sub.num_edges == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 25), st.integers(0, 80), st.integers(0, 2**31 - 1))
def test_self_loops_then_validate(nodes, edges, seed):
    """Property: self-loop insertion always yields a valid graph whose
    diagonal is fully populated."""
    rng = np.random.default_rng(seed)
    g = Graph(rng.integers(0, nodes, size=(2, edges)), num_nodes=nodes)
    looped = validate_graph(add_self_loops(g))
    dense = looped.adjacency_dense().array
    assert np.all(np.diag(dense) >= 1.0)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 25), st.integers(0, 80), st.integers(0, 2**31 - 1))
def test_undirected_is_idempotent(nodes, edges, seed):
    """Property: to_undirected is a fixed point after one application."""
    rng = np.random.default_rng(seed)
    g = Graph(rng.integers(0, nodes, size=(2, edges)), num_nodes=nodes)
    once = to_undirected(g)
    twice = to_undirected(once)
    assert np.allclose(once.adjacency_dense().array,
                       twice.adjacency_dense().array)
