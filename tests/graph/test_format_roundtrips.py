"""Format round-trip coverage: COO <-> CSR <-> CSC <-> dense.

Pins the direct (COO-free) CSR<->CSC transpose against the assembled
dense form for the awkward inputs: duplicate coordinates, empty rows
and columns, zero-sized shapes, and non-square matrices.
"""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.formats import COOMatrix, CSCMatrix, CSRMatrix


def _dense_of(matrix) -> np.ndarray:
    return matrix.to_dense().array


CASES = {
    "plain": dict(row=[0, 1, 2], col=[1, 2, 0], val=[1.0, 2.0, 3.0],
                  shape=(3, 3)),
    "duplicates": dict(row=[0, 0, 1, 0], col=[1, 1, 2, 1],
                       val=[1.0, 2.0, 3.0, 4.0], shape=(2, 3)),
    "empty_rows": dict(row=[3], col=[0], val=[5.0], shape=(5, 2)),
    "empty_cols": dict(row=[0, 1], col=[3, 3], val=[1.0, 1.0], shape=(2, 5)),
    "no_entries": dict(row=[], col=[], val=[], shape=(4, 3)),
    "zero_shape": dict(row=[], col=[], val=[], shape=(0, 0)),
    "zero_cols": dict(row=[], col=[], val=[], shape=(3, 0)),
    "rectangular": dict(row=[0, 2, 2], col=[4, 0, 4], val=[1.0, 2.0, 3.0],
                        shape=(3, 5)),
}


@pytest.fixture(params=sorted(CASES))
def coo(request):
    case = CASES[request.param]
    return COOMatrix(np.asarray(case["row"], dtype=np.int64),
                     np.asarray(case["col"], dtype=np.int64),
                     np.asarray(case["val"], dtype=np.float32),
                     shape=case["shape"])


class TestRoundTrips:
    def test_coo_csr_coo(self, coo):
        back = coo.to_csr().to_coo()
        assert back.shape == coo.shape
        assert np.array_equal(_dense_of(back), _dense_of(coo))

    def test_coo_csc_coo(self, coo):
        back = coo.to_csc().to_coo()
        assert back.shape == coo.shape
        assert np.array_equal(_dense_of(back), _dense_of(coo))

    def test_csr_csc_csr(self, coo):
        csr = coo.to_csr()
        back = csr.to_csc().to_csr()
        assert back.shape == csr.shape
        assert np.array_equal(back.indptr, csr.indptr)
        assert np.array_equal(_dense_of(back), _dense_of(csr))

    def test_csc_csr_csc(self, coo):
        csc = coo.to_csc()
        back = csc.to_csr().to_csc()
        assert back.shape == csc.shape
        assert np.array_equal(back.indptr, csc.indptr)
        assert np.array_equal(_dense_of(back), _dense_of(csc))

    def test_dense_round_trip_sums_duplicates(self, coo):
        dense = coo.to_dense()
        assert np.array_equal(_dense_of(dense.to_csr()), dense.array)
        assert np.array_equal(_dense_of(dense.to_csc()), dense.array)


class TestDirectTranspose:
    """The COO-free CSR<->CSC paths match the COO-based reference."""

    def test_csr_to_csc_matches_coo_path(self, coo):
        csr = coo.to_csr()
        direct = csr.to_csc()
        reference = csr.to_coo().transpose().to_csr().transpose_view()
        assert direct.shape == reference.shape
        assert np.array_equal(direct.indptr, reference.indptr)
        assert np.array_equal(direct.indices, reference.indices)
        assert np.array_equal(direct.data, reference.data)

    def test_csc_to_csr_matches_coo_path(self, coo):
        csc = coo.to_csc()
        direct = csc.to_csr()
        reference = csc.to_coo().to_csr()
        assert direct.shape == reference.shape
        assert np.array_equal(direct.indptr, reference.indptr)
        assert np.array_equal(direct.indices, reference.indices)
        assert np.array_equal(direct.data, reference.data)

    def test_duplicates_preserved_not_merged(self):
        case = CASES["duplicates"]
        csr = COOMatrix(case["row"], case["col"], case["val"],
                        shape=case["shape"]).to_csr()
        csc = csr.to_csc()
        assert csc.nnz == csr.nnz == 4      # structural duplicates survive
        assert csc.to_csr().nnz == csr.nnz

    def test_random_matrices_agree_with_scipy_semantics(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            rows = int(rng.integers(1, 12))
            cols = int(rng.integers(1, 12))
            nnz = int(rng.integers(0, 40))
            coo = COOMatrix(rng.integers(0, rows, nnz),
                            rng.integers(0, cols, nnz),
                            rng.standard_normal(nnz).astype(np.float32),
                            shape=(rows, cols))
            dense = _dense_of(coo)
            assert np.allclose(_dense_of(coo.to_csr().to_csc()), dense,
                               atol=1e-5)
            assert np.allclose(_dense_of(coo.to_csc().to_csr()), dense,
                               atol=1e-5)


class TestRangeSlicing:
    """row_slice / col_slice — the shard-structure primitives."""

    def _random_csr(self, rng, rows=9, cols=7, nnz=30):
        return COOMatrix(rng.integers(0, rows, nnz),
                         rng.integers(0, cols, nnz),
                         rng.standard_normal(nnz).astype(np.float32),
                         shape=(rows, cols)).to_csr()

    def test_row_slices_reassemble_exactly(self):
        rng = np.random.default_rng(11)
        csr = self._random_csr(rng)
        dense = _dense_of(csr)
        pieces = [csr.row_slice(lo, hi) for lo, hi in ((0, 3), (3, 4), (4, 9))]
        assert sum(p.nnz for p in pieces) == csr.nnz
        assert np.array_equal(np.vstack([_dense_of(p) for p in pieces]),
                              dense)

    def test_row_slice_product_matches_full_rows(self):
        rng = np.random.default_rng(12)
        csr = self._random_csr(rng)
        x = rng.standard_normal((7, 5)).astype(np.float32)
        full = csr.matmul(x)
        # bit-for-bit: per-row entry order is preserved by the slice
        assert np.array_equal(csr.row_slice(2, 6).matmul(x), full[2:6])

    def test_row_slice_empty_and_degenerate(self):
        rng = np.random.default_rng(13)
        csr = self._random_csr(rng)
        assert csr.row_slice(4, 4).shape == (0, 7)
        assert csr.row_slice(0, 9).nnz == csr.nnz
        with pytest.raises(GraphFormatError):
            csr.row_slice(3, 12)
        with pytest.raises(GraphFormatError):
            csr.row_slice(-1, 3)

    def test_col_slice_matches_dense_columns(self):
        rng = np.random.default_rng(14)
        csc = self._random_csr(rng).to_csc()
        dense = _dense_of(csc)
        sliced = csc.col_slice(1, 5)
        assert isinstance(sliced, CSCMatrix)
        assert sliced.shape == (9, 4)
        assert np.array_equal(_dense_of(sliced), dense[:, 1:5])


class TestCSCConstruction:
    def test_csc_matvec_through_csr(self):
        coo = COOMatrix([0, 1], [1, 0], [2.0, 3.0], shape=(2, 2))
        csc = coo.to_csc()
        assert isinstance(csc, CSCMatrix)
        x = np.array([1.0, 1.0], dtype=np.float32)
        assert np.allclose(csc.matvec(x), coo.to_csr().matvec(x))

    def test_transpose_view_round_trip(self):
        coo = COOMatrix([0, 2], [1, 0], [1.0, 4.0], shape=(3, 2))
        csr = coo.to_csr()
        view = csr.transpose_view()
        assert view.shape == (2, 3)
        assert isinstance(view.to_csr(), CSRMatrix)
        assert np.array_equal(_dense_of(view), _dense_of(coo).T)
