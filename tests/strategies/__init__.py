"""Hypothesis strategies shared across the test suite.

Re-exports the commonly used strategies and settings profiles for
convenience::

    from strategies import power_law_graphs, PARITY_SETTINGS

(The ``tests/`` directory sits on ``sys.path`` during a pytest run, so
the package imports as top-level ``strategies``.)
"""

from .graphs import power_law_graphs, shard_counts
from .settings import PARITY_SETTINGS, STANDARD_SETTINGS

__all__ = [
    "PARITY_SETTINGS",
    "STANDARD_SETTINGS",
    "power_law_graphs",
    "shard_counts",
]
