"""Hypothesis strategies shared across the test suite.

Re-exports the commonly used strategies and settings profiles for
convenience::

    from strategies import power_law_graphs, PARITY_SETTINGS

(The ``tests/`` directory sits on ``sys.path`` during a pytest run, so
the package imports as top-level ``strategies``.)
"""

from .graphs import power_law_graphs, shard_counts
from .modes import (
    EXECUTABLE_COMBOS,
    FUSABLE_COMBOS,
    batch_member_lists,
    executable_combos,
    fusable_combos,
)
from .settings import PARITY_SETTINGS, STANDARD_SETTINGS

__all__ = [
    "EXECUTABLE_COMBOS",
    "FUSABLE_COMBOS",
    "PARITY_SETTINGS",
    "STANDARD_SETTINGS",
    "batch_member_lists",
    "executable_combos",
    "fusable_combos",
    "power_law_graphs",
    "shard_counts",
]
