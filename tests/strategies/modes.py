"""Execution-mode strategies: backend x model x compute-model combos.

The plan-layer parity sweeps all quantify over the same space — which
backends can run which (model, compute model) pairs, whether the plan
takes the fusion pass, how many shards it executes over, and how many
member graphs pack into one batched plan.  This module is that space,
drawn instead of hand-picked: one shared combo table (the grids
``tests/plan/test_batching.py`` / ``test_fusion.py`` historically
inlined), with strategies over its legal slices.
"""

from hypothesis import strategies as st

from .graphs import power_law_graphs

__all__ = [
    "EXECUTABLE_COMBOS",
    "FUSABLE_COMBOS",
    "batch_member_lists",
    "executable_combos",
    "fusable_combos",
]

#: Backend x (model, compute model) pairs every backend can execute.
#: Batching needs nothing from the execution style, so the observing
#: PyG-like tape participates; fusion/sharding need a plain
#: PlanExecutor, so :data:`FUSABLE_COMBOS` excludes it.
_GRID = {
    "gsuite": (("gcn", "MP"), ("gcn", "SpMM"), ("gin", "MP"),
               ("gin", "SpMM"), ("sage", "MP"), ("gat", "MP")),
    "dgl": (("gcn", "SpMM"), ("gin", "SpMM"), ("sage", "SpMM")),
    "gsuite-adaptive": (("gcn", "MP"), ("gin", "MP"), ("sage", "MP"),
                        ("gat", "MP")),
    "pyg": (("gcn", "MP"), ("gin", "MP"), ("sage", "MP")),
}

EXECUTABLE_COMBOS = tuple((backend, model, cm)
                          for backend, pairs in _GRID.items()
                          for model, cm in pairs)

FUSABLE_COMBOS = tuple(combo for combo in EXECUTABLE_COMBOS
                       if combo[0] != "pyg")


def executable_combos():
    """One legal ``(backend, model, compute_model)`` triple."""
    return st.sampled_from(EXECUTABLE_COMBOS)


def fusable_combos():
    """A triple whose pipeline accepts the fusion pass (no PyG tape)."""
    return st.sampled_from(FUSABLE_COMBOS)


@st.composite
def batch_member_lists(draw, min_members: int = 2, max_members: int = 3,
                       max_nodes: int = 24):
    """2-3 random power-law graphs sharing one feature width.

    The member graphs of one batched plan: widths must agree (the
    :class:`~repro.graph.BatchedGraph` packing contract), everything
    else — node counts, edge counts, degree layout — varies freely.
    """
    width = draw(st.integers(1, 12))
    count = draw(st.integers(min_members, max_members))
    return [draw(power_law_graphs(max_nodes=max_nodes, width=width))
            for _ in range(count)]
