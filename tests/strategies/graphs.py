"""Graph-shaped Hypothesis strategies.

The suite's adversarial graph space in one place: random power-law
graphs spanning the regimes the plan layer discriminates on — flat vs
heavy-tailed in-degree, hub-first (degree-sorted export order, the
worst case for even-row sharding) vs shuffled layouts, isolated-node
tails, and empty edge sets.  Generation is a pure function of drawn
integers (one seeded ``default_rng`` per example), so failing examples
shrink and replay deterministically.
"""

import numpy as np
from hypothesis import strategies as st

__all__ = ["power_law_graphs", "shard_counts"]


def shard_counts():
    """Shard counts spanning the interesting regimes: off (1), even,
    and a ragged prime that never divides the node count cleanly."""
    return st.sampled_from((1, 2, 7))


@st.composite
def power_law_graphs(draw, min_nodes: int = 6, max_nodes: int = 48,
                     max_avg_degree: int = 5, max_width: int = 12,
                     width: int = 0):
    """A random power-law :class:`~repro.graph.Graph` with features.

    In-edge destinations follow a Zipf-like law over the node ids, so
    low ids are hubs; ``hubs_first`` keeps that degree-sorted layout
    (adversarial for even-row sharding) or shuffles it away.  Degree
    zero is allowed — edgeless graphs and isolated nodes are part of
    the space.  ``width`` pins the feature width instead of drawing it
    (member lists that must batch together share one width).
    """
    from repro.graph import Graph

    num_nodes = draw(st.integers(min_nodes, max_nodes))
    avg_degree = draw(st.integers(0, max_avg_degree))
    exponent = draw(st.sampled_from((2.1, 2.5, 3.0)))
    width = width or draw(st.integers(1, max_width))
    seed = draw(st.integers(0, 2**31 - 1))
    hubs_first = draw(st.booleans())

    rng = np.random.default_rng(seed)
    num_edges = num_nodes * avg_degree
    weights = np.arange(1, num_nodes + 1,
                        dtype=np.float64) ** (1.0 - exponent)
    weights /= weights.sum()
    dst = rng.choice(num_nodes, size=num_edges, p=weights)
    src = rng.integers(0, num_nodes, size=num_edges)
    if not hubs_first:
        perm = rng.permutation(num_nodes)
        src, dst = perm[src], perm[dst]
    features = rng.standard_normal((num_nodes, width)).astype(np.float32)
    return Graph(np.vstack([src, dst]).astype(np.int64),
                 num_nodes=num_nodes, features=features,
                 name=f"powerlaw-{num_nodes}n-{num_edges}e")
