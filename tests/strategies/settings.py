"""Shared Hypothesis settings profiles.

One place to tune example budgets instead of a per-file
``@settings(...)`` archipelago.  ``deadline=None`` everywhere: the
suite runs real kernels whose first call pays numpy warm-up costs that
Hypothesis' per-example deadline would misread as flakiness.
"""

from hypothesis import settings

#: For end-to-end parity properties that build and run whole pipelines
#: per example — expensive, so a lean example budget.
PARITY_SETTINGS = settings(max_examples=15, deadline=None)

#: For cheap structural properties over arrays and partitions.
STANDARD_SETTINGS = settings(max_examples=50, deadline=None)
