"""Tests for the SpMM-path training (the DGL-style training dataflow)."""

import numpy as np
import pytest

from repro.core.kernels import record_launches
from repro.datasets import load_dataset
from repro.errors import ModelError
from repro.train import Trainer, build_trainable, synthetic_labels
from repro.train.autodiff import softmax_cross_entropy


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", scale=0.15, seed=4)


class TestSpMMTraining:
    @pytest.mark.parametrize("name", ["gcn", "gin"])
    def test_forward_matches_mp_path(self, graph, name):
        mp = build_trainable(name, graph, hidden=8, out_features=5, seed=6)
        sp = build_trainable(name, graph, hidden=8, out_features=5, seed=6,
                             compute_model="SpMM")
        assert np.allclose(mp.forward().data, sp.forward().data, atol=1e-3)

    @pytest.mark.parametrize("name", ["gcn", "gin"])
    def test_gradients_match_mp_path(self, graph, name):
        """Both computational models produce the same parameter gradients
        — the training-side counterpart of the MP/SpMM equivalence."""
        labels = synthetic_labels(graph, 5)
        mp = build_trainable(name, graph, hidden=8, out_features=5, seed=6)
        sp = build_trainable(name, graph, hidden=8, out_features=5, seed=6,
                             compute_model="SpMM")
        for model in (mp, sp):
            loss = softmax_cross_entropy(model.forward(), labels)
            loss.backward()
        for layer_mp, layer_sp in zip(mp.params, sp.params):
            for key in layer_mp:
                assert np.allclose(layer_mp[key].grad, layer_sp[key].grad,
                                   atol=2e-3), key

    def test_spmm_training_converges(self, graph):
        labels = synthetic_labels(graph, 5)
        model = build_trainable("gcn", graph, hidden=8, out_features=5,
                                compute_model="SpMM")
        result = Trainer(model, labels).fit(epochs=15)
        assert result.final_loss < result.losses[0]

    def test_spmm_training_uses_spmm_kernel(self, graph):
        labels = synthetic_labels(graph, 5)
        model = build_trainable("gcn", graph, hidden=8, out_features=5,
                                compute_model="SpMM")
        trainer = Trainer(model, labels)
        with record_launches() as recorder:
            trainer.train_epoch()
        kernels = {l.kernel for l in recorder.launches}
        assert "spmm" in kernels
        assert "indexSelect" not in kernels  # fused path, no gather

    def test_sage_spmm_rejected(self, graph):
        with pytest.raises(ModelError):
            build_trainable("sage", graph, compute_model="SpMM")
