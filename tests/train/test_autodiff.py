"""Tests for the reverse-mode autodiff engine, including numerical
gradient checks against central differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.graph.formats import COOMatrix
from repro.train import autodiff as ad


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = float(f())
        flat[i] = original - eps
        down = float(f())
        flat[i] = original
        out[i] = (up - down) / (2 * eps)
    return grad


def check_grad(build_loss, param: ad.Tensor, atol=2e-2):
    """Tape gradient of ``param`` matches the numerical gradient."""
    param.zero_grad()
    loss = build_loss()
    loss.backward()
    analytic = param.grad.copy()
    numeric = numerical_gradient(lambda: build_loss().data, param.data)
    assert np.allclose(analytic, numeric, atol=atol), \
        f"max diff {np.abs(analytic - numeric).max()}"


class TestTensorBasics:
    def test_leaf_construction(self):
        p = ad.parameter(np.ones((2, 2)))
        assert p.requires_grad
        assert p.grad is None
        c = ad.constant(np.ones(2))
        assert not c.requires_grad

    def test_backward_default_seed(self):
        p = ad.parameter(np.array([3.0], dtype=np.float32))
        out = ad.scale(p, 2.0)
        out.backward()
        assert p.grad[0] == pytest.approx(2.0)

    def test_gradient_accumulates_on_reuse(self):
        p = ad.parameter(np.array([1.0], dtype=np.float32))
        out = ad.add(ad.scale(p, 1.0), ad.scale(p, 1.0))  # p used twice
        out.backward()
        assert p.grad[0] == pytest.approx(2.0)

    def test_zero_grad(self):
        p = ad.parameter(np.array([1.0], dtype=np.float32))
        ad.scale(p, 1.0).backward()
        p.zero_grad()
        assert p.grad is None

    def test_shape_mismatch_rejected(self):
        p = ad.parameter(np.ones((2, 2)))
        with pytest.raises(ModelError):
            p._accumulate(np.ones(3))

    def test_constant_graph_produces_no_tape(self):
        a = ad.constant(np.ones((2, 2)))
        b = ad.constant(np.ones((2, 2)))
        out = ad.matmul(a, b)
        assert out._backward is None


class TestOpGradients:
    def test_matmul_gradients(self):
        rng = np.random.default_rng(0)
        a = ad.parameter(rng.standard_normal((4, 3)).astype(np.float32))
        b = ad.parameter(rng.standard_normal((3, 2)).astype(np.float32))
        check_grad(lambda: ad.mean_rows(ad.matmul(a, b)), a)
        check_grad(lambda: ad.mean_rows(ad.matmul(a, b)), b)

    def test_gather_gradient(self):
        rng = np.random.default_rng(1)
        x = ad.parameter(rng.standard_normal((5, 3)).astype(np.float32))
        idx = np.array([0, 2, 2, 4])
        check_grad(lambda: ad.mean_rows(ad.gather(x, idx)), x)

    def test_scatter_gradient(self):
        rng = np.random.default_rng(2)
        x = ad.parameter(rng.standard_normal((6, 2)).astype(np.float32))
        idx = np.array([0, 1, 1, 3, 3, 3])
        check_grad(lambda: ad.mean_rows(ad.scatter_sum(x, idx, 4)), x)

    def test_spmm_gradient(self):
        rng = np.random.default_rng(3)
        adj = COOMatrix(rng.integers(0, 5, 12), rng.integers(0, 5, 12),
                        rng.standard_normal(12).astype(np.float32),
                        shape=(5, 5)).to_csr()
        x = ad.parameter(rng.standard_normal((5, 3)).astype(np.float32))
        check_grad(lambda: ad.mean_rows(ad.spmm_op(adj, x)), x)

    def test_relu_gradient(self):
        x = ad.parameter(np.array([[-1.0, 0.5], [2.0, -0.1]],
                                  dtype=np.float32))
        check_grad(lambda: ad.mean_rows(ad.relu(x)), x)

    def test_bias_gradient(self):
        rng = np.random.default_rng(4)
        x = ad.parameter(rng.standard_normal((4, 3)).astype(np.float32))
        b = ad.parameter(rng.standard_normal(3).astype(np.float32))
        check_grad(lambda: ad.mean_rows(ad.add_bias(x, b)), b)

    def test_add_and_scale_gradients(self):
        rng = np.random.default_rng(5)
        a = ad.parameter(rng.standard_normal((3, 2)).astype(np.float32))
        b = ad.parameter(rng.standard_normal((3, 2)).astype(np.float32))
        check_grad(lambda: ad.mean_rows(ad.add(ad.scale(a, 1.5), b)), a)

    def test_add_shape_mismatch(self):
        with pytest.raises(ModelError):
            ad.add(ad.constant(np.ones((2, 2))), ad.constant(np.ones((3, 2))))

    def test_bias_shape_mismatch(self):
        with pytest.raises(ModelError):
            ad.add_bias(ad.constant(np.ones((2, 2))),
                        ad.constant(np.ones(3)))


class TestCrossEntropy:
    def test_loss_value(self):
        # Uniform logits -> loss = log(num_classes).
        logits = ad.parameter(np.zeros((4, 3), dtype=np.float32))
        loss = ad.softmax_cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert float(loss.data) == pytest.approx(np.log(3), rel=1e-4)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(6)
        logits = ad.parameter(rng.standard_normal((5, 4)).astype(np.float32))
        labels = np.array([0, 1, 2, 3, 1])
        check_grad(lambda: ad.softmax_cross_entropy(logits, labels), logits)

    def test_mask_restricts_loss_and_gradient(self):
        logits = ad.parameter(np.zeros((3, 2), dtype=np.float32))
        mask = np.array([True, False, True])
        loss = ad.softmax_cross_entropy(logits, np.array([0, 0, 1]), mask)
        loss.backward()
        assert np.allclose(logits.grad[1], 0.0)

    def test_bad_labels_rejected(self):
        logits = ad.parameter(np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(ModelError):
            ad.softmax_cross_entropy(logits, np.array([0, 5]))
        with pytest.raises(ModelError):
            ad.softmax_cross_entropy(logits, np.array([0]))

    def test_empty_mask_rejected(self):
        logits = ad.parameter(np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(ModelError):
            ad.softmax_cross_entropy(logits, np.array([0, 1]),
                                     np.array([False, False]))


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.integers(1, 5), st.integers(0, 30),
       st.integers(0, 2**31 - 1))
def test_gather_scatter_adjoint_property(n, f, e, seed):
    """Property: gather and scatter_sum are adjoint linear maps —
    <scatter(x), y> == <x, gather(y)> for any index vector."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, n, e)
    x = rng.standard_normal((e, f)).astype(np.float32)
    y = rng.standard_normal((n, f)).astype(np.float32)
    xs = ad.constant(x)
    scattered = ad.scatter_sum(xs, idx, n).data
    gathered = ad.gather(ad.constant(y), idx).data
    lhs = float((scattered * y).sum())
    rhs = float((x * gathered).sum())
    assert lhs == pytest.approx(rhs, rel=1e-3, abs=1e-3)
