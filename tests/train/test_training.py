"""Tests for trainable models, optimizers and the trainer loop."""

import numpy as np
import pytest

from repro.core.models import build_model
from repro.datasets import load_dataset
from repro.errors import ModelError
from repro.train import (
    Adam,
    SGD,
    Trainer,
    build_trainable,
    split_masks,
    synthetic_labels,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", scale=0.15, seed=2)


class TestTrainableModels:
    @pytest.mark.parametrize("name", ["gcn", "gin", "sage"])
    def test_forward_matches_inference_model(self, graph, name):
        trainable = build_trainable(name, graph, hidden=8, out_features=5,
                                    seed=7)
        inference = build_model(name, graph.num_features, 8, 5,
                                compute_model="MP", seed=7)
        assert np.allclose(trainable.forward().data, inference(graph),
                           atol=1e-4)

    def test_alias_resolution(self, graph):
        assert build_trainable("SAG", graph).model_name == "sage"

    def test_unknown_model_rejected(self, graph):
        with pytest.raises(ModelError):
            build_trainable("gat", graph)

    def test_parameter_count_matches_inference(self, graph):
        trainable = build_trainable("gcn", graph, hidden=8, out_features=5)
        inference = build_model("gcn", graph.num_features, 8, 5)
        assert trainable.parameter_count() == inference.parameter_count()

    def test_gradients_flow_to_all_parameters(self, graph):
        from repro.train.autodiff import softmax_cross_entropy
        model = build_trainable("gin", graph, hidden=8, out_features=5)
        labels = synthetic_labels(graph, 5)
        loss = softmax_cross_entropy(model.forward(), labels)
        loss.backward()
        for tensor in model.parameters():
            assert tensor.grad is not None
            assert np.any(tensor.grad != 0)

    def test_export_weights_roundtrip(self, graph):
        model = build_trainable("gcn", graph, hidden=8, out_features=5,
                                seed=1)
        exported = model.export_weights()
        inference = build_model("gcn", graph.num_features, 8, 5, seed=99)
        inference.weights = exported
        assert np.allclose(inference(graph), model.forward().data, atol=1e-4)

    def test_zero_grad(self, graph):
        model = build_trainable("gcn", graph, hidden=8, out_features=5)
        from repro.train.autodiff import mean_rows
        mean_rows(model.forward()).backward()
        model.zero_grad()
        assert all(t.grad is None for t in model.parameters())


class TestOptimizers:
    def _quadratic_param(self):
        from repro.train.autodiff import parameter
        return parameter(np.array([5.0, -3.0], dtype=np.float32))

    def _quadratic_grad(self, p):
        # d/dp of 0.5 * ||p||^2 is p itself.
        p.grad = p.data.copy()

    @pytest.mark.parametrize("factory", [
        lambda p: SGD([p], lr=0.1),
        lambda p: SGD([p], lr=0.1, momentum=0.9),
        lambda p: Adam([p], lr=0.2),
    ])
    def test_converges_on_quadratic(self, factory):
        p = self._quadratic_param()
        optimizer = factory(p)
        for _ in range(100):
            optimizer.zero_grad()
            self._quadratic_grad(p)
            optimizer.step()
        assert np.linalg.norm(p.data) < 0.2

    def test_weight_decay_shrinks(self):
        p = self._quadratic_param()
        optimizer = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros_like(p.data)
        before = np.linalg.norm(p.data)
        optimizer.step()
        assert np.linalg.norm(p.data) < before

    def test_skips_parameters_without_grad(self):
        p = self._quadratic_param()
        optimizer = SGD([p], lr=0.1)
        before = p.data.copy()
        optimizer.step()  # no grad set
        assert np.array_equal(p.data, before)

    def test_invalid_arguments(self):
        p = self._quadratic_param()
        with pytest.raises(ModelError):
            SGD([p], lr=0.0)
        with pytest.raises(ModelError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ModelError):
            Adam([p], lr=0.1, betas=(1.0, 0.9))
        with pytest.raises(ModelError):
            SGD([], lr=0.1)


class TestTrainer:
    def test_loss_decreases(self, graph):
        labels = synthetic_labels(graph, 5)
        model = build_trainable("gcn", graph, hidden=8, out_features=5)
        result = Trainer(model, labels).fit(epochs=20)
        assert result.final_loss < result.losses[0]

    def test_learns_better_than_chance(self, graph):
        labels = synthetic_labels(graph, 5)
        model = build_trainable("gcn", graph, hidden=16, out_features=5)
        result = Trainer(model, labels).fit(epochs=60)
        assert result.final_eval_accuracy > 1.5 / 5  # well above chance

    @pytest.mark.parametrize("name", ["gin", "sage"])
    def test_all_models_train(self, graph, name):
        labels = synthetic_labels(graph, 5)
        model = build_trainable(name, graph, hidden=8, out_features=5)
        result = Trainer(model, labels).fit(epochs=10)
        assert result.final_loss < result.losses[0]

    def test_mask_split(self):
        train, eval_ = split_masks(100, train_fraction=0.6, seed=0)
        assert train.sum() + eval_.sum() == 100
        assert not np.any(train & eval_)

    def test_invalid_split(self):
        with pytest.raises(ModelError):
            split_masks(10, train_fraction=1.5)

    def test_labels_deterministic(self, graph):
        a = synthetic_labels(graph, 5, seed=3)
        b = synthetic_labels(graph, 5, seed=3)
        assert np.array_equal(a, b)

    def test_labels_validation(self, graph):
        with pytest.raises(ModelError):
            synthetic_labels(graph, 1)

    def test_bad_label_shape_rejected(self, graph):
        model = build_trainable("gcn", graph, hidden=8, out_features=5)
        with pytest.raises(ModelError):
            Trainer(model, np.zeros(3, dtype=np.int64))

    def test_invalid_epochs(self, graph):
        labels = synthetic_labels(graph, 5)
        model = build_trainable("gcn", graph, hidden=8, out_features=5)
        with pytest.raises(ModelError):
            Trainer(model, labels).fit(epochs=0)

    def test_training_kernels_are_recordable(self, graph):
        """Training runs through the instrumented kernels: the paper's
        characterization methodology extends to the training phase."""
        from repro.core.kernels import record_launches
        labels = synthetic_labels(graph, 5)
        model = build_trainable("gcn", graph, hidden=8, out_features=5)
        trainer = Trainer(model, labels)
        with record_launches() as recorder:
            trainer.train_epoch()
        kernels = {l.kernel for l in recorder.launches}
        # Forward and backward both decompose into Table II kernels.
        assert {"sgemm", "indexSelect", "scatter"} <= kernels
        backward_launches = [l for l in recorder.launches if "-d" in l.tag]
        assert backward_launches  # gradient kernels carry -dX/-dA/-dB tags
