#!/usr/bin/env python
"""Framework comparison on one dataset — a miniature of Fig. 3 / Fig. 4.

Runs the same GNN function through all four execution paths (PyG-like,
DGL-like, gSuite-MP, gSuite-SpMM), confirms they agree numerically, and
reports end-to-end time plus the per-kernel time split.

Run:  python examples/framework_comparison.py [dataset]
"""

import statistics
import sys

import numpy as np

from repro.core.kernels import record_launches
from repro.datasets import load_dataset
from repro.frameworks import PipelineSpec, get_backend, time_end_to_end

VARIANTS = (
    ("PyG", "pyg", "MP"),
    ("DGL", "dgl", "SpMM"),
    ("gSuite-MP", "gsuite", "MP"),
    ("gSuite-SpMM", "gsuite", "SpMM"),
)


def kernel_split(backend, spec, graph) -> str:
    """Per-kernel share of execution time for one built pipeline."""
    pipeline = backend.build(spec, graph)
    with record_launches() as recorder:
        pipeline.run()
    totals = {}
    for launch in recorder.launches:
        totals[launch.kernel] = totals.get(launch.kernel, 0.0) + launch.duration_s
    overall = sum(totals.values()) or 1.0
    return ", ".join(f"{k} {v / overall:.0%}"
                     for k, v in sorted(totals.items(), key=lambda kv: -kv[1]))


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cora"
    graph = load_dataset(dataset)
    print(f"GCN on {graph.name}: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges\n")

    reference = None
    for label, framework, compute_model in VARIANTS:
        backend = get_backend(framework)
        spec = PipelineSpec(model="gcn", compute_model=compute_model, seed=0)
        out = backend.build(spec, graph).run()
        if reference is None:
            reference = out
        agreement = float(np.abs(out - reference).max())
        times = time_end_to_end(backend, spec, graph, repeats=3)
        print(f"{label:12s} {statistics.mean(times) * 1e3:8.2f} ms   "
              f"max|Δ| vs first: {agreement:.1e}")
        print(f"{'':12s} kernels: {kernel_split(backend, spec, graph)}\n")


if __name__ == "__main__":
    main()
