#!/usr/bin/env python
"""GNN training — the paper's future work, exercised end to end.

Trains a GCN on Cora-style node classification with the suite's own
training substrate (reverse-mode autodiff over the core kernels), then
loads the trained weights back into the *inference* model and verifies
the benchmark pipeline reproduces the trained accuracy.  Finally it
records one training step at kernel level — showing that the paper's
characterization methodology extends to the training phase (gradient
kernels are the same Table II primitives).

Run:  python examples/train_gcn.py
"""


from repro.core.kernels import record_launches
from repro.core.models import build_model
from repro.datasets import load_dataset
from repro.train import Adam, Trainer, build_trainable, synthetic_labels


def main() -> None:
    graph = load_dataset("cora", scale=0.5)
    num_classes = 7
    labels = synthetic_labels(graph, num_classes)
    print(f"Training GCN on {graph.name} ({graph.num_nodes} nodes, "
          f"{num_classes} classes)\n")

    model = build_trainable("gcn", graph, hidden=16,
                            out_features=num_classes)
    trainer = Trainer(model, labels,
                      optimizer=Adam(model.parameters(), lr=0.02))
    result = trainer.fit(epochs=60, eval_every=15)

    print("epoch   loss")
    for epoch in (0, 14, 29, 44, 59):
        print(f"{epoch + 1:>5}   {result.losses[epoch]:.4f}")
    print(f"\nfinal train accuracy: {trainer.accuracy(trainer.train_mask):.1%}")
    print(f"final eval accuracy:  {result.final_eval_accuracy:.1%} "
          f"(chance = {1 / num_classes:.1%})")

    # Trained weights drop straight into the inference benchmark model.
    inference = build_model("gcn", graph.num_features, 16, num_classes)
    inference.weights = model.export_weights()
    logits = inference(graph)
    eval_mask = trainer.eval_mask
    accuracy = float(
        (logits.argmax(axis=1)[eval_mask] == labels[eval_mask]).mean())
    print(f"inference-model accuracy with trained weights: {accuracy:.1%}")

    # One training step under kernel instrumentation.
    with record_launches() as recorder:
        trainer.train_epoch()
    forward = [l for l in recorder.launches if "-d" not in l.tag]
    backward = [l for l in recorder.launches if "-d" in l.tag]
    print(f"\nkernel launches per training step: "
          f"{len(forward)} forward + {len(backward)} backward")
    print("backward kernels:",
          sorted({l.kernel for l in backward}))


if __name__ == "__main__":
    main()
