#!/usr/bin/env python
"""Quickstart: build a GNN inference pipeline with a few parameters.

The paper's pitch is that "a desired GNN pipeline can be easily built by
passing only a few parameters".  This script does exactly that: pick a
model, a dataset and a computational model; run inference; time it; and
peek at the kernel-level recording.

Run:  python examples/quickstart.py
"""

import statistics

from repro import GNNPipeline

def main() -> None:
    # Everything not specified falls back to the suite defaults
    # (2 layers, hidden width 16, native gSuite backend, seed 0).
    pipeline = GNNPipeline.from_params(
        model="gcn",
        dataset="cora",
        compute_model="MP",
    )
    graph = pipeline.graph
    print(f"Workload: {graph.name} — {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges, {graph.num_features} features")

    # 1. Plain inference.
    logits = pipeline.run()
    print(f"Inference output: {logits.shape} (per-node class logits)")
    print(f"Predicted class of node 0: {int(logits[0].argmax())}")

    # 2. End-to-end timing, the paper's Fig. 3 measurement (3 repeats).
    times = pipeline.measure()
    print(f"End-to-end time: {statistics.mean(times) * 1e3:.2f} ms "
          f"(mean of {len(times)} runs)")

    # 3. Kernel-level recording: which core kernels ran, how large.
    recorder = pipeline.record()
    print("\nKernel launches (Table II kernels):")
    for launch in recorder.launches:
        print(f"  {launch.kernel:12s} model={launch.model:4s} "
              f"threads={launch.threads:>9,} warps={launch.warps:>7,} "
              f"tag={launch.tag}")

    # 4. The same pipeline on the SpMM computational model — identical
    # numerics, different kernels (the paper's two-sided design).
    spmm = GNNPipeline.from_params(model="gcn", dataset="cora",
                                   compute_model="SpMM")
    spmm_logits = spmm.run()
    max_diff = float(abs(spmm_logits - logits).max())
    print(f"\nMP vs SpMM max |difference|: {max_diff:.2e} "
          "(same function, different kernel composition)")


if __name__ == "__main__":
    main()
