#!/usr/bin/env python
"""Extending gSuite with a new GNN model, plug-and-play.

The paper claims that "by utilizing MP and SpMM core kernels, a new GNN
model can be built in a plug-and-play manner".  This example builds a
Simple Graph Convolution (SGC, Wu et al. 2019) — a model the suite does
not ship — from nothing but the public core kernels, registers it, and
characterizes it like any built-in model.

SGC collapses a K-layer GCN into one propagation:  X' = P^K X W  with
P = D^-1/2 (A+I) D^-1/2.  MP realises the K propagations as
gather/scatter rounds; SpMM as repeated spmm over a precomputed P.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import GNNPipeline
from repro.core.kernels import index_select, scatter, sgemm, spmm
from repro.core.models import GNNModel, register_model
from repro.graph import gcn_edge_weights, normalized_adjacency


class SGC(GNNModel):
    """Simple Graph Convolution: K propagation hops, one linear layer."""

    name = "sgc"
    supported_compute_models = ("MP", "SpMM")

    def __init__(self, *args, hops: int = 2, **kwargs):
        self.hops = hops
        # SGC is a single linear layer regardless of `num_layers`.
        kwargs["num_layers"] = 1
        super().__init__(*args, **kwargs)

    def prepare(self, graph, ):
        if self.compute_model == "MP":
            edge_index, edge_weight = gcn_edge_weights(graph)
            return {"edge_index": edge_index, "edge_weight": edge_weight}
        return {"propagation": normalized_adjacency(graph)}

    def layer_forward(self, layer, x, graph, state):
        for hop in range(self.hops):
            if self.compute_model == "MP":
                messages = index_select(x, state["edge_index"][0],
                                        tag=f"sgc-hop{hop}")
                messages = messages * state["edge_weight"][:, None]
                x = scatter(messages, state["edge_index"][1],
                            dim_size=graph.num_nodes, tag=f"sgc-hop{hop}")
            else:
                x = spmm(state["propagation"], x, tag=f"sgc-hop{hop}")
        params = self.weights[layer]
        return sgemm(x, params["W"], bias=params["b"], tag="sgc-linear")


def main() -> None:
    register_model("sgc", SGC)
    print("Registered custom model 'sgc' (Simple Graph Convolution)\n")

    # The custom model drops into the standard pipeline untouched.
    pipeline = GNNPipeline.from_params(model="sgc", dataset="citeseer")
    logits = pipeline.run()
    print(f"SGC inference on CiteSeer: output {logits.shape}")

    # Both computational models work because both were implemented from
    # the public kernels; verify they agree.
    spmm_pipe = GNNPipeline.from_params(model="sgc", dataset="citeseer",
                                        compute_model="SpMM")
    diff = float(np.abs(spmm_pipe.run() - logits).max())
    print(f"MP vs SpMM max |difference|: {diff:.2e}")

    # ... and the whole characterization stack applies immediately.
    results = pipeline.simulate()
    print("\nPer-kernel simulation of the custom model:")
    for result in results:
        print(f"  {result.kernel:12s} ({result.tag:10s}) "
              f"dominant stall: {result.dominant_stall():18s} "
              f"L1 hit {result.l1_hit_rate:.0%}")


if __name__ == "__main__":
    main()
