#!/usr/bin/env python
"""Architectural characterization of one GNN workload.

Reproduces the paper's per-kernel analysis flow on a single pipeline:
record the kernel launches, push them through the cycle-level GPU
simulator (GPGPU-Sim substitute) and the analytic profiler (nvprof
substitute), and print the metrics of Figs. 5-9 for this workload.

Run:  python examples/characterization.py [model] [dataset]
      e.g. python examples/characterization.py gin citeseer
"""

import sys

from repro import GNNPipeline
from repro.gpu import (
    GpuSimulator,
    NvprofProfiler,
    STALL_REASONS,
    OCCUPANCY_STATES,
    v100_config,
)


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "gcn"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "cora"
    pipeline = GNNPipeline.from_params(model=model, dataset=dataset,
                                       sample_cap=200_000)
    print(f"Characterizing {model.upper()} on {dataset} "
          f"({pipeline.figure_label()})\n")

    launches = pipeline.record().launches
    simulator = GpuSimulator(v100_config(max_cycles=30_000))
    profiler = NvprofProfiler()

    for launch in launches:
        sim = simulator.simulate(launch)
        prof = profiler.profile(launch)
        print(f"== {launch.kernel} ({launch.tag}) — "
              f"{launch.warps:,} warps, atomic={launch.atomic} ==")

        mix = ", ".join(f"{k} {v:.0%}"
                        for k, v in prof.instruction_fractions.items()
                        if v > 0.005)
        print(f"  instruction mix (Fig. 5): {mix}")

        stalls = ", ".join(f"{r} {sim.stall_distribution[r]:.0%}"
                           for r in STALL_REASONS
                           if sim.stall_distribution[r] > 0.005)
        print(f"  issue stalls (Fig. 6):    {stalls}")

        occupancy = ", ".join(f"{s} {sim.occupancy_distribution[s]:.0%}"
                              for s in OCCUPANCY_STATES
                              if sim.occupancy_distribution[s] > 0.005)
        print(f"  warp occupancy (Fig. 7):  {occupancy}")

        print(f"  cache hit rates (Fig. 8): "
              f"L1 sim {sim.l1_hit_rate:.0%} / nvprof {prof.l1_hit_rate:.0%}, "
              f"L2 sim {sim.l2_hit_rate:.0%} / nvprof {prof.l2_hit_rate:.0%}")
        print(f"  utilization (Fig. 9):     "
              f"compute {prof.compute_utilization:.0%}, "
              f"memory {prof.memory_utilization:.0%}  "
              f"(sim IPC {sim.ipc:.2f})")
        print(f"  dominant stall: {sim.dominant_stall()}\n")


if __name__ == "__main__":
    main()
