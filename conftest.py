"""Ensure ``src`` is importable when the package is not installed."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
